package dist

import (
	"bufio"
	"bytes"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"net"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"randsync/internal/explore"
	"randsync/internal/sim"
	"randsync/internal/valency"
)

// WorkerOptions configure one worker process.
type WorkerOptions struct {
	// Hook, when non-nil, runs at the start of every received batch
	// (argument: batch id).  It is the fault-injection seam: a hook
	// that panics kills the worker mid-batch with its effects unsent,
	// exactly the failure the recovery protocol must absorb.
	Hook func(batchID int64)
	// ID is the worker's stable identity, announced in every HELLO so
	// the coordinator treats a re-handshake as a rejoin of the same
	// peer, not a new one.  Zero picks a random identity at Work start;
	// distinct workers must use distinct identities.
	ID uint64
	// ReconnectSeed seeds the backoff jitter, making the retry schedule
	// reproducible under a fixed seed (default: derived from ID).
	ReconnectSeed uint64
	// MaxAttempts caps consecutive failed connection attempts before
	// Work gives up (default 30).  A session that gets as far as a job
	// resets the counter: only a coordinator that stays unreachable
	// exhausts the worker.
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the exponential retry delay
	// (defaults 50ms and 2s); each wait is jittered into the upper half
	// of its window.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// NetTimeout bounds every read and write on the connection (default
	// 30s) — a silent coordinator errors the session into the retry
	// loop instead of wedging the worker.
	NetTimeout time.Duration
	// Done, when non-nil, cancels the retry loop: Work returns nil at
	// the next retry boundary after Done closes.  It does not interrupt
	// an established session — closing the connection does that.
	Done <-chan struct{}
}

func (o WorkerOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 30
	}
	return o.MaxAttempts
}

func (o WorkerOptions) baseBackoff() time.Duration {
	if o.BaseBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return o.BaseBackoff
}

func (o WorkerOptions) maxBackoff() time.Duration {
	if o.MaxBackoff <= 0 {
		return 2 * time.Second
	}
	return o.MaxBackoff
}

func (o WorkerOptions) netTimeout() time.Duration {
	if o.NetTimeout <= 0 {
		return 30 * time.Second
	}
	return o.NetTimeout
}

// randomID draws a non-zero identity from the OS entropy source.
func randomID() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			// Entropy failure: fall back to the clock; uniqueness, not
			// unpredictability, is all an identity needs.
			return uint64(time.Now().UnixNano()) | 1
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// Work connects to the coordinator at addr and processes batches until
// the coordinator sends STOP (returns nil).  A lost connection is not
// fatal: Work re-dials under seeded exponential backoff with jitter,
// re-handshakes with the same identity, and resumes taking batches —
// the coordinator recognizes the identity and treats it as a rejoin.
// Work gives up (returning the last error) only after MaxAttempts
// consecutive failures without reaching a job, and returns nil if
// opts.Done closes first.
//
// A worker is stateless between batches: all authority lives in the
// coordinator, so a worker crash or reconnect at any point loses only
// unacknowledged work.
func Work(addr string, opts WorkerOptions) error {
	if opts.ID == 0 {
		opts.ID = randomID()
	}
	seed := opts.ReconnectSeed
	if seed == 0 {
		seed = opts.ID
	}
	rng := rand.New(rand.NewPCG(seed, 0xbacc0ff))
	attempts := 0
	var lastErr error
	for {
		conn, err := net.DialTimeout("tcp", addr, opts.netTimeout())
		if err == nil {
			var progressed bool
			// The deferred close must run even when a batch hook panics:
			// the unwinding connection drop is what the coordinator
			// observes as this worker's death.
			progressed, err = func() (bool, error) {
				defer conn.Close()
				return serveWorker(conn, opts)
			}()
			if err == nil {
				return nil // clean STOP
			}
			if progressed {
				attempts = 0
			}
		}
		attempts++
		lastErr = err
		if attempts >= opts.maxAttempts() {
			return fmt.Errorf("dist: worker %#x giving up after %d attempts: %w", opts.ID, attempts, lastErr)
		}
		if !sleepBackoff(rng, opts, attempts) {
			return nil // Done closed
		}
	}
}

// sleepBackoff waits the jittered exponential delay for the given
// attempt number; it reports false if opts.Done closed instead.
func sleepBackoff(rng *rand.Rand, opts WorkerOptions, attempt int) bool {
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := opts.baseBackoff() << shift
	if d <= 0 || d > opts.maxBackoff() {
		d = opts.maxBackoff()
	}
	// Jitter into [d/2, d]: desynchronizes a worker fleet re-dialing a
	// restarted coordinator without stretching the worst case.
	d = d/2 + time.Duration(rng.Int64N(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-opts.Done:
		return false
	case <-t.C:
		return true
	}
}

// serveWorker runs the worker protocol over an established connection.
// progressed reports whether the session got at least as far as a job —
// the signal that resets the retry budget.
func serveWorker(conn net.Conn, opts WorkerOptions) (progressed bool, err error) {
	timeout := opts.netTimeout()
	bw := bufio.NewWriter(conn)
	flush := func() error {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		return bw.Flush()
	}
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := writeFrame(bw, msgHello, helloMsg{Version: wireVersion, Identity: opts.ID}.encode()); err != nil {
		return false, err
	}
	if err := flush(); err != nil {
		return false, err
	}
	br := bufio.NewReader(conn)

	var st *workerState
	for {
		conn.SetReadDeadline(time.Now().Add(timeout))
		typ, payload, err := readFrame(br)
		if err != nil {
			return progressed, err
		}
		switch typ {
		case msgJob:
			jm, err := decodeJob(payload)
			if err != nil {
				return progressed, err
			}
			if st != nil && jm.Epoch <= st.epoch {
				// A duplicated or reordered copy of a job already loaded
				// (or of an older vector's): the loaded state is at least
				// as new, so the frame is noise.
				break
			}
			st, err = newWorkerState(jm)
			if err != nil {
				return progressed, err
			}
			progressed = true
		case msgBatch:
			if st == nil {
				// A reordered BATCH overtook its JOB (wire chaos): error
				// the session; the rejoin gets the job re-sent first.
				return progressed, fmt.Errorf("dist: batch before job")
			}
			bm, err := decodeBatch(payload)
			if err != nil {
				return progressed, err
			}
			if bm.Epoch > st.epoch {
				// The batch's JOB frame was dropped or is still stuck
				// behind it: processing against the loaded (older) vector
				// would explore the wrong state space.  Error the session;
				// the rejoin gets the current job re-sent first.
				return progressed, fmt.Errorf("dist: batch epoch %d overtook job epoch %d", bm.Epoch, st.epoch)
			}
			if bm.Epoch < st.epoch {
				// A duplicated leftover of an earlier vector: the
				// coordinator has moved on and would discard the ack.
				break
			}
			if opts.Hook != nil {
				opts.Hook(bm.ID)
			}
			done, err := st.process(bm)
			if err != nil {
				return progressed, err
			}
			conn.SetWriteDeadline(time.Now().Add(timeout))
			if err := writeFrame(bw, msgDone, done.encode()); err != nil {
				return progressed, err
			}
			if err := flush(); err != nil {
				return progressed, err
			}
		case msgPing:
			conn.SetWriteDeadline(time.Now().Add(timeout))
			if err := writeFrame(bw, msgPong, payload); err != nil {
				return progressed, err
			}
			if err := flush(); err != nil {
				return progressed, err
			}
		case msgStop:
			return progressed, nil
		default:
			return progressed, fmt.Errorf("dist: unexpected frame type %d", typ)
		}
	}
}

// workerState is the per-input-vector replay context.
type workerState struct {
	proto  sim.Protocol
	inputs []int64
	epoch  uint64
	vopts  valency.Options
	valid  map[int64]bool
	pool   int
}

func newWorkerState(jm jobMsg) (*workerState, error) {
	proto, err := Resolve(jm.Spec)
	if err != nil {
		return nil, err
	}
	st := &workerState{
		proto:  proto,
		inputs: jm.Inputs,
		epoch:  jm.Epoch,
		vopts: valency.Options{
			NoSymmetry: jm.NoSymmetry,
			Crash:      jm.Crash,
		},
		valid: make(map[int64]bool, len(jm.Inputs)),
		pool:  jm.Workers,
	}
	if st.pool < 1 {
		st.pool = runtime.GOMAXPROCS(0)
	}
	for _, in := range jm.Inputs {
		st.valid[in] = true
	}
	return st, nil
}

// wslot is one pool worker's private effect buffer; merged after the
// pool drains so slots never contend.
type wslot struct {
	keyer     sim.Keyer
	buf       []byte
	emits     []emit
	decisions map[int64]bool
	generated int64
}

// process replays, safety-checks and expands every item of a batch and
// returns the batch's atomic effect set.  Items fan out across the
// worker's local explore pool; the frontier does not grow locally —
// every successor is an emit, and admission is the coordinator's call.
func (st *workerState) process(bm batchMsg) (doneMsg, error) {
	slots := make([]wslot, st.pool)
	for i := range slots {
		slots[i].decisions = make(map[int64]bool)
		slots[i].keyer.Symmetry = st.vopts.SymmetryOn()
	}
	var violated atomic.Bool
	var firstErr atomic.Value

	explore.Run(st.pool, bm.Items, func(it item, ctx *explore.Ctx[item]) {
		w := &slots[ctx.Worker()]
		c := sim.NewConfig(st.proto, st.inputs)
		if err := c.ReplaySchedule(it.sched); err != nil {
			firstErr.CompareAndSwap(nil, fmt.Errorf("dist: item %d: %w", it.gid, err))
			ctx.Stop()
			return
		}
		if valency.Unsafe(c, st.vopts, st.valid, w.decisions) {
			violated.Store(true)
			ctx.Stop()
			return
		}
		for pid := 0; pid < c.N(); pid++ {
			if st.vopts.Crashed(c, pid) {
				continue
			}
			a := c.Pending(pid)
			if a.Kind == sim.ActHalt {
				continue
			}
			outcomes := int64(1)
			if a.Kind == sim.ActFlip {
				outcomes = a.Sides
			}
			for o := int64(0); o < outcomes; o++ {
				var u sim.StepUndo
				if _, err := c.StepInto(pid, o, &u); err != nil {
					// The serial checker reports this as Stuck; defer.
					violated.Store(true)
					ctx.Stop()
					return
				}
				w.generated++
				w.buf = st.vopts.AppendVisitKey(&w.keyer, c, w.buf[:0])
				sched := sim.AppendScheduleStep(append([]byte(nil), it.sched...), pid, o)
				w.emits = append(w.emits, emit{
					from:  it.gid,
					key:   append([]byte(nil), w.buf...),
					sched: sched,
				})
				c.UndoStep(&u)
			}
		}
	})

	if err, _ := firstErr.Load().(error); err != nil {
		return doneMsg{}, err
	}
	done := doneMsg{ID: bm.ID, Epoch: st.epoch, Violated: violated.Load()}
	decs := make(map[int64]bool)
	for i := range slots {
		done.Generated += slots[i].generated
		done.Emits = append(done.Emits, slots[i].emits...)
		for v := range slots[i].decisions {
			decs[v] = true
		}
	}
	for v := range decs {
		done.Decisions = append(done.Decisions, v)
	}
	sort.Slice(done.Decisions, func(a, b int) bool { return done.Decisions[a] < done.Decisions[b] })
	return done, nil
}

// verifyKey is used by tests to assert replay integrity directly.
func (st *workerState) verifyKey(it item, want []byte) error {
	c := sim.NewConfig(st.proto, st.inputs)
	if err := c.ReplaySchedule(it.sched); err != nil {
		return err
	}
	var k sim.Keyer
	k.Symmetry = st.vopts.SymmetryOn()
	got := st.vopts.AppendVisitKey(&k, c, nil)
	if !bytes.Equal(got, want) {
		return fmt.Errorf("dist: item %d replays to a different visit key", it.gid)
	}
	return nil
}
