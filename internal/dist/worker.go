package dist

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync/atomic"

	"randsync/internal/explore"
	"randsync/internal/sim"
	"randsync/internal/valency"
)

// WorkerOptions configure one worker process.
type WorkerOptions struct {
	// Hook, when non-nil, runs at the start of every received batch
	// (argument: batch id).  It is the fault-injection seam: a hook
	// that panics kills the worker mid-batch with its effects unsent,
	// exactly the failure the recovery protocol must absorb.
	Hook func(batchID int64)
}

// Work connects to the coordinator at addr and processes batches until
// the coordinator sends STOP (returns nil) or the connection dies
// (returns the error).  A worker is stateless between batches: all
// authority lives in the coordinator, so a worker crash at any point
// loses only unacknowledged work.
func Work(addr string, opts WorkerOptions) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return serveWorker(conn, opts)
}

// serveWorker runs the worker protocol over an established connection.
func serveWorker(conn net.Conn, opts WorkerOptions) error {
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, msgHello, putUvarint(nil, wireVersion)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	br := bufio.NewReader(conn)

	var st *workerState
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return err
		}
		switch typ {
		case msgJob:
			jm, err := decodeJob(payload)
			if err != nil {
				return err
			}
			st, err = newWorkerState(jm)
			if err != nil {
				return err
			}
		case msgBatch:
			if st == nil {
				return fmt.Errorf("dist: batch before job")
			}
			bm, err := decodeBatch(payload)
			if err != nil {
				return err
			}
			if opts.Hook != nil {
				opts.Hook(bm.ID)
			}
			done, err := st.process(bm)
			if err != nil {
				return err
			}
			if err := writeFrame(bw, msgDone, done.encode()); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case msgPing:
			if err := writeFrame(bw, msgPong, payload); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case msgStop:
			return nil
		default:
			return fmt.Errorf("dist: unexpected frame type %d", typ)
		}
	}
}

// workerState is the per-input-vector replay context.
type workerState struct {
	proto  sim.Protocol
	inputs []int64
	vopts  valency.Options
	valid  map[int64]bool
	pool   int
}

func newWorkerState(jm jobMsg) (*workerState, error) {
	proto, err := Resolve(jm.Spec)
	if err != nil {
		return nil, err
	}
	st := &workerState{
		proto:  proto,
		inputs: jm.Inputs,
		vopts: valency.Options{
			NoSymmetry: jm.NoSymmetry,
			Crash:      jm.Crash,
		},
		valid: make(map[int64]bool, len(jm.Inputs)),
		pool:  jm.Workers,
	}
	if st.pool < 1 {
		st.pool = runtime.GOMAXPROCS(0)
	}
	for _, in := range jm.Inputs {
		st.valid[in] = true
	}
	return st, nil
}

// wslot is one pool worker's private effect buffer; merged after the
// pool drains so slots never contend.
type wslot struct {
	keyer     sim.Keyer
	buf       []byte
	emits     []emit
	decisions map[int64]bool
	generated int64
}

// process replays, safety-checks and expands every item of a batch and
// returns the batch's atomic effect set.  Items fan out across the
// worker's local explore pool; the frontier does not grow locally —
// every successor is an emit, and admission is the coordinator's call.
func (st *workerState) process(bm batchMsg) (doneMsg, error) {
	slots := make([]wslot, st.pool)
	for i := range slots {
		slots[i].decisions = make(map[int64]bool)
		slots[i].keyer.Symmetry = st.vopts.SymmetryOn()
	}
	var violated atomic.Bool
	var firstErr atomic.Value

	explore.Run(st.pool, bm.Items, func(it item, ctx *explore.Ctx[item]) {
		w := &slots[ctx.Worker()]
		c := sim.NewConfig(st.proto, st.inputs)
		if err := c.ReplaySchedule(it.sched); err != nil {
			firstErr.CompareAndSwap(nil, fmt.Errorf("dist: item %d: %w", it.gid, err))
			ctx.Stop()
			return
		}
		if valency.Unsafe(c, st.vopts, st.valid, w.decisions) {
			violated.Store(true)
			ctx.Stop()
			return
		}
		for pid := 0; pid < c.N(); pid++ {
			if st.vopts.Crashed(c, pid) {
				continue
			}
			a := c.Pending(pid)
			if a.Kind == sim.ActHalt {
				continue
			}
			outcomes := int64(1)
			if a.Kind == sim.ActFlip {
				outcomes = a.Sides
			}
			for o := int64(0); o < outcomes; o++ {
				var u sim.StepUndo
				if _, err := c.StepInto(pid, o, &u); err != nil {
					// The serial checker reports this as Stuck; defer.
					violated.Store(true)
					ctx.Stop()
					return
				}
				w.generated++
				w.buf = st.vopts.AppendVisitKey(&w.keyer, c, w.buf[:0])
				sched := sim.AppendScheduleStep(append([]byte(nil), it.sched...), pid, o)
				w.emits = append(w.emits, emit{
					from:  it.gid,
					key:   append([]byte(nil), w.buf...),
					sched: sched,
				})
				c.UndoStep(&u)
			}
		}
	})

	if err, _ := firstErr.Load().(error); err != nil {
		return doneMsg{}, err
	}
	done := doneMsg{ID: bm.ID, Violated: violated.Load()}
	decs := make(map[int64]bool)
	for i := range slots {
		done.Generated += slots[i].generated
		done.Emits = append(done.Emits, slots[i].emits...)
		for v := range slots[i].decisions {
			decs[v] = true
		}
	}
	for v := range decs {
		done.Decisions = append(done.Decisions, v)
	}
	sort.Slice(done.Decisions, func(a, b int) bool { return done.Decisions[a] < done.Decisions[b] })
	return done, nil
}

// verifyKey is used by tests to assert replay integrity directly.
func (st *workerState) verifyKey(it item, want []byte) error {
	c := sim.NewConfig(st.proto, st.inputs)
	if err := c.ReplaySchedule(it.sched); err != nil {
		return err
	}
	var k sim.Keyer
	k.Symmetry = st.vopts.SymmetryOn()
	got := st.vopts.AppendVisitKey(&k, c, nil)
	if !bytes.Equal(got, want) {
		return fmt.Errorf("dist: item %d replays to a different visit key", it.gid)
	}
	return nil
}
