package dist

// wire_test.go pins down the framing and payload codecs: round-trips,
// hostile inputs (short reads, out-of-range length prefixes, corrupted
// checksums, truncated payloads), and streams containing duplicated
// frames — the shapes the network-chaos proxy manufactures on purpose.

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
)

func mustFrame(t *testing.T, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, typ, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x00}, {0xff, 0x00, 0x7f}, bytes.Repeat([]byte{0xaa}, 4096)}
	for _, p := range payloads {
		raw := mustFrame(t, msgDone, p)
		typ, got, err := readFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("payload len %d: %v", len(p), err)
		}
		if typ != msgDone || !bytes.Equal(got, p) {
			t.Fatalf("payload len %d: round-trip mismatch", len(p))
		}
	}
}

// TestFrameShortReads: a frame truncated at every possible byte
// boundary must error (io.EOF / ErrUnexpectedEOF / checksum), never
// hang or return a partial payload.
func TestFrameShortReads(t *testing.T) {
	raw := mustFrame(t, msgBatch, []byte{1, 2, 3, 4, 5})
	for cut := 0; cut < len(raw); cut++ {
		_, _, err := readFrame(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at byte %d/%d decoded successfully", cut, len(raw))
		}
	}
}

func TestFrameLengthOutOfRange(t *testing.T) {
	cases := []struct {
		name string
		n    uint32
	}{
		{"zero", 0},
		{"below-minimum", 8}, // must cover type byte + 8B checksum
		{"oversized", maxFrame + 1},
		{"absurd", 0xffffffff},
	}
	for _, tc := range cases {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], tc.n)
		_, _, err := readFrame(bytes.NewReader(hdr[:]))
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s (len=%d): err = %v, want out-of-range", tc.name, tc.n, err)
		}
	}
}

// TestFrameCorruption: flipping any bit of the type, payload, or
// checksum must fail the FNV check — a truncating or bit-mangling proxy
// cannot slip a torn frame past the decoder.
func TestFrameCorruption(t *testing.T) {
	raw := mustFrame(t, msgPong, []byte{10, 20, 30})
	for i := 4; i < len(raw); i++ { // skip length prefix: covered above
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		if _, _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
	}
}

// TestFrameStreamWithDuplicates: the chaos proxy duplicates whole
// frames in-stream; the reader must hand back each copy independently
// and keep its position — duplication is the *coordinator's* problem
// (idempotent DONE application), never the codec's.
func TestFrameStreamWithDuplicates(t *testing.T) {
	a := mustFrame(t, msgDone, []byte("alpha"))
	b := mustFrame(t, msgPong, nil)
	var stream bytes.Buffer
	stream.Write(a)
	stream.Write(b)
	stream.Write(a) // duplicate arrives late, after an unrelated frame
	stream.Write(b)

	want := []struct {
		typ byte
		p   string
	}{{msgDone, "alpha"}, {msgPong, ""}, {msgDone, "alpha"}, {msgPong, ""}}
	for i, w := range want {
		typ, p, err := readFrame(&stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != w.typ || string(p) != w.p {
			t.Fatalf("frame %d: got (%d, %q), want (%d, %q)", i, typ, p, w.typ, w.p)
		}
	}
	if _, _, err := readFrame(&stream); err != io.EOF {
		t.Fatalf("stream tail: err = %v, want io.EOF", err)
	}
}

func TestHelloCodec(t *testing.T) {
	m := helloMsg{Version: wireVersion, Identity: 0xdeadbeef}
	got, err := decodeHello(m.encode())
	if err != nil || got != m {
		t.Fatalf("round-trip: got %+v, %v", got, err)
	}
	if _, err := decodeHello(helloMsg{Version: wireVersion + 1, Identity: 1}.encode()); err == nil {
		t.Error("future wire version accepted")
	}
	if _, err := decodeHello(helloMsg{Version: wireVersion, Identity: 0}.encode()); err == nil {
		t.Error("zero identity accepted")
	}
	if _, err := decodeHello(nil); err == nil {
		t.Error("empty hello accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	job := jobMsg{
		Spec:       ProtoSpec{Name: "counter-walk", N: 3, R: 2, Rounds: 5, Seed: 7},
		Inputs:     []int64{0, 1, -1},
		NoSymmetry: true,
		Crash:      []int{2},
		Workers:    4,
		Shards:     16,
	}
	gotJob, err := decodeJob(job.encode())
	if err != nil || !reflect.DeepEqual(gotJob, job) {
		t.Fatalf("job: got %+v, %v", gotJob, err)
	}

	batch := batchMsg{ID: 42, Items: []item{
		{gid: 7, sched: []byte{1, 2}},
		{gid: 9, sched: nil},
	}}
	gotBatch, err := decodeBatch(batch.encode())
	if err != nil || gotBatch.ID != batch.ID || len(gotBatch.Items) != 2 ||
		gotBatch.Items[0].gid != 7 || !bytes.Equal(gotBatch.Items[0].sched, []byte{1, 2}) ||
		gotBatch.Items[1].gid != 9 || len(gotBatch.Items[1].sched) != 0 {
		t.Fatalf("batch: got %+v, %v", gotBatch, err)
	}

	done := doneMsg{ID: 42, Generated: 99, Violated: true,
		Decisions: []int64{1, 0},
		Emits:     []emit{{from: 7, key: []byte{0xab}, sched: []byte{1}}}}
	gotDone, err := decodeDone(done.encode())
	if err != nil || gotDone.ID != 42 || gotDone.Generated != 99 || !gotDone.Violated ||
		!reflect.DeepEqual(gotDone.Decisions, done.Decisions) || len(gotDone.Emits) != 1 ||
		gotDone.Emits[0].from != 7 || !bytes.Equal(gotDone.Emits[0].key, []byte{0xab}) {
		t.Fatalf("done: got %+v, %v", gotDone, err)
	}
}

// TestPayloadTruncation: every proper prefix of a valid payload must
// decode to an error (sticky-error wreader), and full payloads with
// trailing garbage must be rejected too.
func TestPayloadTruncation(t *testing.T) {
	job := jobMsg{Spec: ProtoSpec{Name: "cas", N: 2}, Inputs: []int64{0, 1}, Workers: 1, Shards: 4}
	batch := batchMsg{ID: 1, Items: []item{{gid: 3, sched: []byte{9, 9}}}}
	done := doneMsg{ID: 1, Generated: 2, Emits: []emit{{from: 3, key: []byte{1}, sched: []byte{2}}}}
	cases := []struct {
		name   string
		p      []byte
		decode func([]byte) error
	}{
		{"job", job.encode(), func(b []byte) error { _, err := decodeJob(b); return err }},
		{"batch", batch.encode(), func(b []byte) error { _, err := decodeBatch(b); return err }},
		{"done", done.encode(), func(b []byte) error { _, err := decodeDone(b); return err }},
	}
	for _, tc := range cases {
		for cut := 0; cut < len(tc.p); cut++ {
			if err := tc.decode(tc.p[:cut]); err == nil {
				t.Errorf("%s truncated at %d/%d decoded successfully", tc.name, cut, len(tc.p))
			}
		}
		trailing := append(append([]byte(nil), tc.p...), 0x00)
		if err := tc.decode(trailing); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Errorf("%s with trailing byte: err = %v, want trailing-bytes", tc.name, err)
		}
	}
}

// FuzzFrame: any (type, payload) pair must survive an encode/decode
// round-trip bit-exactly.
func FuzzFrame(f *testing.F) {
	f.Add(byte(msgHello), []byte{})
	f.Add(byte(msgDone), []byte{1, 2, 3})
	f.Add(byte(0xff), bytes.Repeat([]byte{0x55}, 300))
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		if len(payload) > 1<<16 {
			t.Skip()
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			t.Fatal(err)
		}
		gt, gp, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("round-trip: %v", err)
		}
		if gt != typ || !bytes.Equal(gp, payload) {
			t.Fatal("round-trip mismatch")
		}
	})
}

// FuzzFrameDecode: arbitrary bytes fed to the frame reader must never
// panic, and anything it accepts must be a frame writeFrame could have
// produced (re-encoding reproduces the consumed prefix).
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(mustFrameSeed(msgDone, []byte("seed")))
	f.Add([]byte{0, 0, 0, 9, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		typ, p, err := readFrame(r)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, p); err != nil {
			t.Fatal(err)
		}
		consumed := len(raw) - r.Len()
		if !bytes.Equal(buf.Bytes(), raw[:consumed]) {
			t.Fatal("accepted frame does not re-encode to its own bytes")
		}
	})
}

// FuzzPayloadDecoders: the message decoders must reject or accept
// arbitrary payload bytes without ever panicking.
func FuzzPayloadDecoders(f *testing.F) {
	f.Add([]byte{})
	f.Add(jobMsg{Spec: ProtoSpec{Name: "cas", N: 2}, Inputs: []int64{0, 1}}.encode())
	f.Add(doneMsg{ID: 1, Emits: []emit{{from: 1, key: []byte{2}}}}.encode())
	f.Fuzz(func(t *testing.T, raw []byte) {
		_, _ = decodeHello(raw)
		_, _ = decodeJob(raw)
		_, _ = decodeBatch(raw)
		_, _ = decodeDone(raw)
	})
}

func mustFrameSeed(typ byte, payload []byte) []byte {
	var buf bytes.Buffer
	_ = writeFrame(&buf, typ, payload)
	return buf.Bytes()
}
