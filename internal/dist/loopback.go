package dist

import (
	"fmt"
	"net"
	"sync"

	"randsync/internal/valency"
)

// Loopback runs a whole cluster — coordinator plus `workers` worker
// loops — inside one process over 127.0.0.1 TCP, exercising the real
// wire protocol end to end.  It is the single-binary mode behind
// `distcheck -loopback N`, the differential-test harness, and the only
// mode that works on an air-gapped single machine.
//
// hooks[i], when present and non-nil, is installed as worker i's batch
// hook (WorkerOptions.Hook); a hook that panics kills only that worker
// goroutine — its connection closes and the coordinator's recovery
// path takes over, which is exactly how the fault-injection tests
// murder a worker mid-run.
func Loopback(workers int, job Job, opts Options, hooks ...func(batchID int64)) (*valency.Report, error) {
	if workers < 1 {
		return nil, fmt.Errorf("dist: loopback needs at least one worker")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		var hook func(int64)
		if i < len(hooks) {
			hook = hooks[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panicking hook must kill the worker, not the process:
			// Work's deferred conn.Close runs on the way out, which is
			// what the coordinator observes as the worker's death.
			defer func() { _ = recover() }()
			// Worker errors are not the test's verdict: a worker killed
			// by Stop or by coordinator shutdown errors out by design.
			_ = Work(addr, WorkerOptions{Hook: hook})
		}()
	}

	rep, err := Serve(ln, workers, job, opts)
	// Serve's exit closes every accepted connection; closing the
	// listener also resets workers Serve never accepted (it can fail
	// validation before accepting anyone).  Only then is it safe to
	// wait for the worker loops to drain.
	ln.Close()
	wg.Wait()
	return rep, err
}
