package dist

import (
	"fmt"
	"net"
	"sync"

	"randsync/internal/fault"
	"randsync/internal/valency"
)

// Loopback runs a whole cluster — coordinator plus `workers` worker
// loops — inside one process over 127.0.0.1 TCP, exercising the real
// wire protocol end to end.  It is the single-binary mode behind
// `distcheck -loopback N`, the differential-test harness, and the only
// mode that works on an air-gapped single machine.
//
// hooks[i], when present and non-nil, is installed as worker i's batch
// hook (WorkerOptions.Hook); a hook that panics kills only that worker
// goroutine — its connection closes and the coordinator's recovery
// path takes over, which is exactly how the fault-injection tests
// murder a worker mid-run.
func Loopback(workers int, job Job, opts Options, hooks ...func(batchID int64)) (*valency.Report, error) {
	return LoopbackChaos(LoopbackConfig{Workers: workers, Hooks: hooks}, job, opts)
}

// LoopbackConfig parameterizes LoopbackChaos beyond plain Loopback.
type LoopbackConfig struct {
	// Workers is the cluster size (at least 1).
	Workers int
	// Hooks[i], when present and non-nil, is worker i's batch hook.
	Hooks []func(batchID int64)
	// ChaosSeed, when non-zero, interposes a deterministic
	// fault.NetProxy between the workers and the coordinator: every
	// worker connection is subjected to the seeded chaos plan (drops,
	// delays, duplicates, reorders, truncations, cuts).  The same seed
	// over the same job reproduces the same chaos decision sequences.
	ChaosSeed uint64
	// ChaosPlan is the event mix; the zero value selects
	// fault.DefaultNetPlan().  Ignored when ChaosSeed is zero.
	ChaosPlan fault.NetPlanOptions
	// Worker is the template for every worker's options: Hook, ID and
	// Done are filled in per worker (IDs are 1..Workers unless the
	// template carries a non-zero ID base).  Loopback workers default
	// to a fast retry schedule (5ms base, 250ms cap) and effectively
	// unbounded attempts, since the coordinator is in-process and a
	// retry loop should never be the reason a test hangs.
	Worker WorkerOptions
}

// LoopbackChaos is Loopback with reconnect-grade worker options and an
// optional deterministic network-chaos proxy on the wire.  When chaos
// ran and the run produced stats, the report's Recovery block carries
// the chaos seed and total events fired, so a soak verdict is auditable
// from the report alone.
func LoopbackChaos(cfg LoopbackConfig, job Job, opts Options) (*valency.Report, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dist: loopback needs at least one worker")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	addr := ln.Addr().String()

	var chaos *fault.NetChaos
	var proxy *fault.NetProxy
	if cfg.ChaosSeed != 0 {
		plan := cfg.ChaosPlan
		if plan == (fault.NetPlanOptions{}) {
			plan = fault.DefaultNetPlan()
		}
		chaos = fault.NewNetChaos(cfg.ChaosSeed, plan)
		proxy, err = fault.NewNetProxy(addr, chaos)
		if err != nil {
			return nil, err
		}
		defer proxy.Close()
		addr = proxy.Addr()
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wopts := cfg.Worker
		if i < len(cfg.Hooks) {
			wopts.Hook = cfg.Hooks[i]
		}
		wopts.ID += uint64(i + 1)
		wopts.Done = done
		if wopts.MaxAttempts == 0 {
			wopts.MaxAttempts = 1 << 20
		}
		if wopts.BaseBackoff == 0 {
			wopts.BaseBackoff = 5e6 // 5ms
		}
		if wopts.MaxBackoff == 0 {
			wopts.MaxBackoff = 250e6 // 250ms
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panicking hook must kill the worker, not the process:
			// Work's deferred conn.Close runs on the way out, which is
			// what the coordinator observes as the worker's death.
			defer func() { _ = recover() }()
			// Worker errors are not the test's verdict: a worker killed
			// by Stop or by coordinator shutdown errors out by design.
			_ = Work(addr, wopts)
		}()
	}

	rep, err := Serve(ln, cfg.Workers, job, opts)
	// Serve's exit closes every accepted connection; closing the
	// listener (and the chaos proxy) resets anything in flight, and
	// closing done stops the worker retry loops.  Only then is it safe
	// to wait for the worker goroutines to drain.
	ln.Close()
	if proxy != nil {
		proxy.Close()
	}
	close(done)
	wg.Wait()
	if chaos != nil && rep != nil && rep.Stats != nil && rep.Stats.Recovery != nil {
		rep.Stats.Recovery.ChaosSeed = chaos.Seed()
		rep.Stats.Recovery.ChaosEvents = chaos.Events()
	}
	return rep, err
}
