package core

import (
	"fmt"
	"sort"

	"randsync/internal/object"
	"randsync/internal/sim"
)

// GeneralOptions configure FindGeneral.
type GeneralOptions struct {
	// MaxSolo bounds the length of solo terminating executions searched
	// for; 0 means an automatic bound derived from the object count.
	MaxSolo int
	// Processes overrides the number of processes used; 0 means the
	// 3r²+r of Lemma 3.6 plus one extra process per side (rounded up to
	// even).  The extra pair covers the v̄=0 corner of Lemma 3.4: with
	// exactly (3r²+r)/2 processes a side can reach the final recursion
	// level with P = P̂, leaving no process to run to a decision after
	// the last block write; one surplus process per side propagates
	// through the recursion (|P′| ≥ bound′ + slack whenever |P| ≥ bound +
	// slack) and guarantees a decider.
	Processes int
}

func (o GeneralOptions) maxSolo(r int) int {
	if o.MaxSolo > 0 {
		return o.MaxSolo
	}
	return 8*(r+2)*(r+2) + 64
}

func (o GeneralOptions) processes(r int) int {
	n := o.Processes
	if n <= 0 {
		n = 3*r*r + r + 2
	}
	if n%2 == 1 {
		n++
	}
	return n
}

// gPiece is one piece of an interruptible execution (Definition 3.1): a
// block write to objs by writers — processes that take no further steps in
// the execution — followed by solo segments whose nontrivial operations all
// target objs.
type gPiece struct {
	objs    []int       // V_i, sorted
	writers map[int]int // object → block-writing pid
	events  sim.Execution
	decided bool // a process decided within this piece (last piece only)
}

// gExec is a recorded interruptible execution (Definition 3.1) starting
// from some configuration: pieces with strictly growing object sets, ending
// in a decision.  Excess capacity (Definition 3.2) is not stored: the
// combiner re-discovers poised outsider processes by scanning the
// configuration, and the arithmetic of Lemmas 3.4–3.6 guarantees the scans
// succeed.
type gExec struct {
	initial regSet       // V = V_1
	procs   map[int]bool // process set P
	pieces  []gPiece
	value   int64 // the value decided at the end
}

// participants returns every process taking a step in the (pending)
// pieces of the execution.  This is a superset of the writers and segment
// runners still to come; processes carved as excess capacity during the
// build may also appear here if their pre-carving segment steps lie in a
// pending piece, in which case their current poise is already consumed by
// this execution and they must not be donated to the opposing side.
func (g *gExec) participants() map[int]bool {
	out := make(map[int]bool)
	for _, p := range g.pieces {
		for _, ev := range p.events {
			out[ev.Pid] = true
		}
	}
	return out
}

// events returns the concatenated events of all pieces.
func (g *gExec) events() sim.Execution {
	var out sim.Execution
	for _, p := range g.pieces {
		out = append(out, p.events...)
	}
	return out
}

// rest returns the interruptible execution with the first piece removed;
// by Definition 3.1 it is interruptible from the configuration reached by
// the first piece.
func (g *gExec) rest() *gExec {
	return &gExec{
		initial: newRegSet(g.pieces[1].objs...),
		procs:   g.procs,
		pieces:  g.pieces[1:],
		value:   g.value,
	}
}

// generalAdversary carries the state of one FindGeneral run.
type generalAdversary struct {
	proto   sim.Protocol
	types   []object.Type
	maxSolo int
	r       int
}

// poisedMap scans the configuration and returns, for each object, the
// sorted pids of eligible processes poised at it.
func (ad *generalAdversary) poisedMap(c *sim.Config, eligible map[int]bool) map[int][]int {
	out := make(map[int][]int)
	for pid := 0; pid < c.N(); pid++ {
		if eligible != nil && !eligible[pid] {
			continue
		}
		if obj, ok := c.PoisedAt(pid); ok {
			out[obj] = append(out[obj], pid)
		}
	}
	for _, pids := range out {
		sort.Ints(pids)
	}
	return out
}

// soloTruncated advances pid solo from c until it decides or is poised at
// an object outside v, following a solo terminating execution (Lemma 3.4's
// δ segments).  The applied events are returned.
func (ad *generalAdversary) soloTruncated(c *sim.Config, pid int, v regSet) (sim.Execution, error) {
	full, _, ok := sim.SoloTerminate(c, pid, ad.maxSolo)
	if !ok {
		return nil, fmt.Errorf("core: no solo terminating execution for P%d within %d steps; protocol may lack nondeterministic solo termination", pid, ad.maxSolo)
	}
	cut := len(full)
	for i, ev := range full {
		if obj, ok := nontrivialTarget(ad.types, ev); ok && !v[obj] {
			cut = i
			break
		}
	}
	seg := full[:cut]
	if err := c.Apply(seg); err != nil {
		return nil, fmt.Errorf("core: applying solo segment of P%d: %w", pid, err)
	}
	return seg, nil
}

// sortedPids returns the members of a pid set in increasing order.
func sortedPids(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for pid := range set {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// build mechanizes Lemma 3.4: from base (not modified), construct an
// interruptible execution with initial object set v and process set procs
// that has excess capacity e for u.
//
// Preconditions (the caller's arithmetic, per the lemma): at base there are
// at least v̄+1 processes of procs poised at every object of v, at least e
// processes outside procs poised at every object of v∩u, and |procs| ≥
// (r²+r−v²+v)/2 + e·|v̄∩u|.
func (ad *generalAdversary) build(base *sim.Config, v regSet, procs map[int]bool, u regSet, e int) (*gExec, error) {
	c := base.Clone()
	out := &gExec{initial: v.clone()}
	cur := v.clone()
	active := make(map[int]bool, len(procs))
	for pid := range procs {
		active[pid] = true
	}
	// carved collects the excess reservations E of Lemma 3.4: processes
	// set aside, poised at newly added objects, that take no steps in the
	// execution.  They realize the excess capacity of Definition 3.2 and
	// are excluded from the resulting process set so that the Lemma 3.5
	// combiner can donate them to the opposing side.
	carved := make(map[int]bool)

	for {
		vbar := ad.r - len(cur)

		// Select P̂ ⊆ active: v̄+1 processes poised at each object of cur;
		// the first becomes the block writer (P₁).
		poised := ad.poisedMap(c, active)
		phat := make(map[int]bool)
		writers := make(map[int]int, len(cur))
		for _, obj := range cur.sorted() {
			cands := poised[obj]
			if len(cands) < vbar+1 {
				return nil, fmt.Errorf("core: build: only %d processes poised at R%d, need v̄+1 = %d",
					len(cands), obj, vbar+1)
			}
			for _, pid := range cands[:vbar+1] {
				phat[pid] = true
			}
			writers[obj] = cands[0]
		}

		// Block write to cur by the writers.
		var events sim.Execution
		for _, obj := range cur.sorted() {
			pid := writers[obj]
			if got, ok := c.PoisedAt(pid); !ok || got != obj {
				return nil, fmt.Errorf("core: build: P%d not poised at R%d for block write", pid, obj)
			}
			ev, err := c.Step(pid, 0)
			if err != nil {
				return nil, err
			}
			events = append(events, ev)
		}

		// δ segments: every process of active−P̂ runs until it decides or
		// is poised at an object outside cur.
		decided := false
		for _, pid := range sortedPids(active) {
			if phat[pid] {
				continue
			}
			seg, err := ad.soloTruncated(c, pid, cur)
			if err != nil {
				return nil, err
			}
			events = append(events, seg...)
			if c.Decided[pid] {
				out.value = c.Decision[pid]
				decided = true
				break
			}
		}
		out.pieces = append(out.pieces, gPiece{
			objs: cur.sorted(), writers: writers, events: events, decided: decided,
		})
		if decided {
			out.procs = activeMinus(procs, carved)
			return out, nil
		}
		if vbar == 0 {
			return nil, fmt.Errorf("core: build: all %d objects covered but no process decided; process set too small", ad.r)
		}

		// Lemma 3.4's counting argument: find i ∈ {1..v̄} such that the
		// objects of v̄∩ū with ≥ i poised processes (y_i) plus those of
		// v̄∩u with ≥ e+i poised processes (z_{e+i}) cover v̄−i+1 objects.
		poised = ad.poisedMap(c, activeMinus(active, phat))
		found := false
		for i := 1; i <= vbar; i++ {
			var ys, zs []int
			for obj := 0; obj < ad.r; obj++ {
				if cur[obj] {
					continue
				}
				n := len(poised[obj])
				if u[obj] {
					if n >= e+i {
						zs = append(zs, obj)
					}
				} else if n >= i {
					ys = append(ys, obj)
				}
			}
			need := vbar - i + 1
			if len(ys)+len(zs) < need {
				continue
			}
			// Choose exactly `need` objects, preferring y-objects (they
			// cost no excess reservations).
			if len(ys) > need {
				ys = ys[:need]
			}
			if len(ys)+len(zs) > need {
				zs = zs[:need-len(ys)]
			}
			// Carve the excess reservations E: e processes poised at each
			// chosen z-object leave the active set and become the excess
			// capacity for u at the next configuration.
			for _, obj := range zs {
				cands := poised[obj]
				// Keep the first i as members of P' poised at obj; the
				// next e become excess.
				for _, pid := range cands[i : i+e] {
					delete(active, pid)
					carved[pid] = true
				}
			}
			// The block writers of this piece take no further steps.
			for _, pid := range writers {
				delete(active, pid)
			}
			for _, obj := range ys {
				cur[obj] = true
			}
			for _, obj := range zs {
				cur[obj] = true
			}
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("core: build: counting argument failed with %d active processes and v̄=%d; process set too small", len(active), vbar)
		}
	}
}

// activeMinus returns a − b as a fresh set.
func activeMinus(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool, len(a))
	for pid := range a {
		if !b[pid] {
			out[pid] = true
		}
	}
	return out
}

// applyPiece replays one piece of an interruptible execution on c.  The
// block-write events are replayed flexibly: the writer's pending action
// must match, but the response is recomputed — the value of a historyless
// object after the block write does not depend on its prior value, and the
// writers take no further steps, so their diverging responses are
// invisible (the observation after Definition 3.1).  All other events are
// replayed strictly.  The (possibly response-rewritten) events are
// returned.
func (ad *generalAdversary) applyPiece(c *sim.Config, p gPiece) (sim.Execution, error) {
	out := make(sim.Execution, 0, len(p.events))
	nbw := len(p.objs)
	for i, ev := range p.events {
		if i < nbw {
			pending := c.Pending(ev.Pid)
			if pending != ev.Action {
				return nil, fmt.Errorf("core: block-write replay: P%d pending %v, recorded %v",
					ev.Pid, pending, ev.Action)
			}
			got, err := c.Step(ev.Pid, 0)
			if err != nil {
				return nil, err
			}
			out = append(out, got)
		} else {
			if err := c.Apply(sim.Execution{ev}); err != nil {
				return nil, fmt.Errorf("core: piece replay: %w", err)
			}
			out = append(out, ev)
		}
	}
	return out, nil
}

// combine mechanizes Lemma 3.5: a and b are interruptible executions from
// c deciding different values, with disjoint process sets; the result is an
// execution from c (applied to it) deciding both values.
func (ad *generalAdversary) combine(c *sim.Config, a, b *gExec) (sim.Execution, error) {
	if a.value == b.value {
		return nil, fmt.Errorf("core: combine with equal decision values %d", a.value)
	}
	if a.initial.subsetOf(b.initial) {
		return ad.caseSubsetG(c, a, b)
	}
	if b.initial.subsetOf(a.initial) {
		return ad.caseSubsetG(c, b, a)
	}
	return ad.caseNeitherG(c, a, b)
}

// caseSubsetG handles x.initial ⊆ y.initial: x's first piece is performed;
// its nontrivial operations all target x.initial ⊆ y.initial, so y's block
// write to y.initial obliterates them and y remains interruptible from the
// new configuration.
func (ad *generalAdversary) caseSubsetG(c *sim.Config, x, y *gExec) (sim.Execution, error) {
	out, err := ad.applyPiece(c, x.pieces[0])
	if err != nil {
		return nil, err
	}
	if x.pieces[0].decided {
		// x has decided; run all of y.
		for _, p := range y.pieces {
			evs, err := ad.applyPiece(c, p)
			if err != nil {
				return nil, err
			}
			out = append(out, evs...)
		}
		return out, nil
	}
	if len(x.pieces) < 2 {
		return nil, fmt.Errorf("core: interruptible execution ended without deciding")
	}
	rest, err := ad.combine(c, x.rest(), y)
	if err != nil {
		return nil, err
	}
	return append(out, rest...), nil
}

// caseNeitherG handles incomparable initial sets (the second half of the
// Lemma 3.5 proof): extend each side to U = V ∪ W with poised processes
// drawn from the other side's excess capacity, and recurse on a pair whose
// combined co-size v̄+w̄ strictly decreased.
func (ad *generalAdversary) caseNeitherG(c *sim.Config, a, b *gExec) (sim.Execution, error) {
	u := a.initial.union(b.initial)

	aExt, err := ad.extendG(c, a, b, u)
	if err != nil {
		return nil, err
	}
	if aExt.value == a.value {
		return ad.combine(c, aExt, b)
	}
	bExt, err := ad.extendG(c, b, a, u)
	if err != nil {
		return nil, err
	}
	if bExt.value == b.value {
		return ad.combine(c, a, bExt)
	}
	// aExt decides b's value and bExt decides a's value; both have initial
	// object set U, so the subset case applies and terminates.
	return ad.combine(c, bExt, aExt)
}

// extendG builds an interruptible execution with initial object set u ⊋
// x.initial and a process set extending x.procs by ū+1 poised processes
// (not in y.procs) per object of u − x.initial, with excess capacity
// |complement(y.initial)| for that complement.
func (ad *generalAdversary) extendG(c *sim.Config, x, y *gExec, u regSet) (*gExec, error) {
	ubar := ad.r - len(u)
	procs := make(map[int]bool, len(x.procs))
	for pid := range x.procs {
		procs[pid] = true
	}
	// A donor's poise must not already be consumed by a pending piece of
	// the opposing execution: exclude y's process set and everyone taking
	// a step in y's remaining pieces.
	reserved := y.participants()
	for pid := range y.procs {
		reserved[pid] = true
	}
	poised := ad.poisedMap(c, nil)
	for _, obj := range u.minus(x.initial).sorted() {
		found := 0
		for _, pid := range poised[obj] {
			if found == ubar+1 {
				break
			}
			if reserved[pid] {
				continue
			}
			procs[pid] = true
			found++
		}
		if found < ubar+1 {
			return nil, fmt.Errorf("core: extend: only %d eligible processes poised at R%d, need ū+1 = %d",
				found, obj, ubar+1)
		}
	}
	yBar := ad.complement(y.initial)
	return ad.build(c, u, procs, yBar, len(yBar))
}

// complement returns the set of all objects not in s.
func (ad *generalAdversary) complement(s regSet) regSet {
	out := make(regSet)
	for obj := 0; obj < ad.r; obj++ {
		if !s[obj] {
			out[obj] = true
		}
	}
	return out
}

// FindGeneral mechanizes Lemma 3.6 / Theorem 3.7: given a protocol over r
// historyless objects satisfying nondeterministic solo termination, run
// with 3r²+r processes (half with input 0, half with input 1), it
// constructs a verified execution deciding both 0 and 1.
//
// If an interruptible execution by processes that all share an input
// decides the opposite value, that execution is itself a validity
// violation (in the configuration where every process has that input), and
// is returned as a ValidityViolation witness instead.
func FindGeneral(proto sim.Protocol, opts GeneralOptions) (*Witness, error) {
	if err := historylessOnly(proto); err != nil {
		return nil, err
	}
	types := proto.Objects()
	r := len(types)
	if r == 0 {
		return nil, fmt.Errorf("core: %s uses no objects", proto.Name())
	}
	ad := &generalAdversary{
		proto:   proto,
		types:   types,
		maxSolo: opts.maxSolo(r),
		r:       r,
	}

	// The deep incomparable-sets recursions of Lemma 3.5 consume poised
	// donor processes via configuration scans; our scan-based accounting
	// can starve slightly earlier than the paper's (delicate) bookkeeping,
	// so on pool exhaustion we retry with a larger pool.  The asymptotic
	// shape — O(r²) processes defeat any solo-terminating protocol on r
	// historyless objects — is unaffected.
	n := opts.processes(r)
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		w, err := findGeneralOnce(ad, proto, n)
		if err == nil {
			return w, nil
		}
		lastErr = err
		n = n + n/2
		if n%2 == 1 {
			n++
		}
	}
	return nil, lastErr
}

// findGeneralOnce runs the Lemma 3.6 construction with a fixed pool size.
func findGeneralOnce(ad *generalAdversary, proto sim.Protocol, n int) (*Witness, error) {
	r := ad.r
	inputs := make([]int64, n)
	pSet := make(map[int]bool, n/2)
	qSet := make(map[int]bool, n/2)
	for i := 0; i < n; i++ {
		if i < n/2 {
			pSet[i] = true
		} else {
			inputs[i] = 1
			qSet[i] = true
		}
	}

	initial := sim.NewConfig(proto, inputs)
	all := ad.complement(newRegSet())

	a, err := ad.build(initial, newRegSet(), pSet, all, r)
	if err != nil {
		return nil, fmt.Errorf("core: building α: %w", err)
	}
	if a.value != 0 {
		return validityWitness(proto, n, 0, a)
	}
	b, err := ad.build(initial, newRegSet(), qSet, all, r)
	if err != nil {
		return nil, fmt.Errorf("core: building β: %w", err)
	}
	if b.value != 1 {
		return validityWitness(proto, n, 1, b)
	}

	work := initial.Clone()
	exec, err := ad.combine(work, a, b)
	if err != nil {
		return nil, err
	}
	w := &Witness{Proto: proto, Inputs: inputs, Exec: exec}
	if err := w.Verify(); err != nil {
		return nil, err
	}
	return w, nil
}

// validityWitness packages an interruptible execution whose participants
// all have input `input` but which decided another value: replayed in the
// configuration where every process has that input, it violates validity.
func validityWitness(proto sim.Protocol, n int, input int64, g *gExec) (*Witness, error) {
	inputs := make([]int64, n)
	for i := range inputs {
		inputs[i] = input
	}
	w := &Witness{
		Proto:  proto,
		Inputs: inputs,
		Exec:   g.events(),
		Kind:   ValidityViolation,
	}
	if err := w.Verify(); err != nil {
		return nil, fmt.Errorf("core: validity witness does not verify: %w", err)
	}
	return w, nil
}
