// Package core mechanizes the lower-bound constructions of §3 of Fich,
// Herlihy and Shavit, "On the Space Complexity of Randomized
// Synchronization": given a consensus protocol over historyless objects
// that satisfies nondeterministic solo termination, the package constructs
// a concrete execution in which one process decides 0 and another decides 1
// — the machine-checked witness behind the paper's Ω(√n) space lower bound
// (Theorem 3.7).
//
// Two constructions are implemented:
//
//   - FindIdentical: the §3.1 special case (Lemmas 3.1–3.2, Theorem 3.3)
//     for read-write registers and identical processes, which splices
//     executions together using clones — processes left behind poised to
//     re-perform earlier writes.
//
//   - FindGeneral: the general case (Lemmas 3.4–3.6, Theorem 3.7) for
//     arbitrary historyless objects and non-identical processes, built
//     from interruptible executions (Definitions 3.1–3.2) and their
//     excess capacity.
//
// Every execution the adversary produces is replayed step-by-step through
// the ordinary simulator semantics (Witness.Verify) before being reported,
// so a bug in the combiner cannot silently "prove" a false inconsistency.
package core

import (
	"fmt"
	"sort"

	"randsync/internal/object"
	"randsync/internal/sim"
)

// WitnessKind says which correctness condition of §2 the witness violates.
type WitnessKind uint8

const (
	// Inconsistency: the execution decides two different values.
	Inconsistency WitnessKind = iota
	// ValidityViolation: the execution decides a value that is no
	// process's input.
	ValidityViolation
)

// String implements fmt.Stringer.
func (k WitnessKind) String() string {
	switch k {
	case Inconsistency:
		return "inconsistency"
	case ValidityViolation:
		return "validity violation"
	}
	return fmt.Sprintf("witnesskind(%d)", uint8(k))
}

// Witness is a counterexample execution: replayed from the initial
// configuration with the recorded inputs, it violates consistency (two
// processes decide different values) or validity.  It is the executable
// analogue of "this implementation is not a correct consensus
// implementation".
type Witness struct {
	// Proto is the protocol attacked.
	Proto sim.Protocol
	// Inputs is the input vector of the configuration the execution
	// starts from.
	Inputs []int64
	// Exec is the offending execution.
	Exec sim.Execution
	// Kind is the violated condition.
	Kind WitnessKind
	// Decisions maps each decided value to the deciding processes, filled
	// in by Verify.
	Decisions map[int64][]int
}

// Verify replays the witness from its initial configuration and checks
// that the execution is legal and exhibits the claimed violation.  It must
// be called before a witness is trusted.
func (w *Witness) Verify() error {
	c := sim.NewConfig(w.Proto, w.Inputs)
	if err := c.Apply(w.Exec); err != nil {
		return fmt.Errorf("core: witness does not replay: %w", err)
	}
	decisions := c.Decisions()
	switch w.Kind {
	case Inconsistency:
		if len(decisions) < 2 {
			return fmt.Errorf("core: witness execution decides only %v, want two values", decisions)
		}
	case ValidityViolation:
		valid := make(map[int64]bool, len(w.Inputs))
		for _, in := range w.Inputs {
			valid[in] = true
		}
		bad := false
		for v := range decisions {
			if !valid[v] {
				bad = true
			}
		}
		if !bad {
			return fmt.Errorf("core: witness execution decides only input values %v", decisions)
		}
	default:
		return fmt.Errorf("core: unknown witness kind %v", w.Kind)
	}
	w.Decisions = decisions
	return nil
}

// ProcessesUsed returns the number of distinct processes taking steps in
// the witness execution — the quantity bounded by Theorem 3.3 (at most
// r²−r+1 identical processes can solve randomized consensus using r
// registers) and Lemma 3.6 (3r²+r processes suffice to derive
// inconsistency from r historyless objects).
func (w *Witness) ProcessesUsed() int { return len(w.Exec.ByProcess()) }

// regSet is a set of object indexes with deterministic iteration order.
type regSet map[int]bool

func newRegSet(regs ...int) regSet {
	s := make(regSet, len(regs))
	for _, r := range regs {
		s[r] = true
	}
	return s
}

// sorted returns the members in increasing order.
func (s regSet) sorted() []int {
	out := make([]int, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// subsetOf reports whether s ⊆ t.
func (s regSet) subsetOf(t regSet) bool {
	for r := range s {
		if !t[r] {
			return false
		}
	}
	return true
}

// union returns s ∪ t as a new set.
func (s regSet) union(t regSet) regSet {
	out := make(regSet, len(s)+len(t))
	for r := range s {
		out[r] = true
	}
	for r := range t {
		out[r] = true
	}
	return out
}

// minus returns s \ t as a new set.
func (s regSet) minus(t regSet) regSet {
	out := make(regSet)
	for r := range s {
		if !t[r] {
			out[r] = true
		}
	}
	return out
}

// intersect returns s ∩ t as a new set.
func (s regSet) intersect(t regSet) regSet {
	out := make(regSet)
	for r := range s {
		if t[r] {
			out[r] = true
		}
	}
	return out
}

// clone returns a copy of s.
func (s regSet) clone() regSet {
	out := make(regSet, len(s))
	for r := range s {
		out[r] = true
	}
	return out
}

// equal reports s == t.
func (s regSet) equal(t regSet) bool {
	return len(s) == len(t) && s.subsetOf(t)
}

// isNontrivialOn reports whether ev is a nontrivial operation on an object,
// and if so which object.
func nontrivialTarget(types []object.Type, ev sim.Event) (int, bool) {
	if ev.Action.Kind != sim.ActOperate {
		return 0, false
	}
	if object.Trivial(types[ev.Action.Obj], ev.Action.Op.Kind) {
		return 0, false
	}
	return ev.Action.Obj, true
}

// historylessOnly verifies that every object of the protocol is
// historyless, the hypothesis of Theorem 3.7.
func historylessOnly(proto sim.Protocol) error {
	for i, t := range proto.Objects() {
		if !object.Historyless(t) {
			return fmt.Errorf("core: object R%d of %s has non-historyless type %s; the lower bound does not apply",
				i, proto.Name(), t.Name())
		}
	}
	return nil
}

// ValidateTarget checks that proto is a legitimate target for the lower-
// bound constructions at the given system size: every object historyless,
// and nondeterministic solo termination holding from the initial
// configuration for a sample of inputs within maxSolo steps.
//
// The check is necessarily partial (NST quantifies over all reachable
// configurations); the constructions themselves re-discover NST failures
// as explicit errors during the build.
func ValidateTarget(proto sim.Protocol, n, maxSolo int) error {
	if err := historylessOnly(proto); err != nil {
		return err
	}
	if err := sim.Validate(proto, n); err != nil {
		return err
	}
	for _, input := range []int64{0, 1} {
		inputs := make([]int64, n)
		for i := range inputs {
			inputs[i] = input
		}
		c := sim.NewConfig(proto, inputs)
		for pid := 0; pid < n; pid++ {
			if c.Pending(pid).Kind == sim.ActHalt {
				return fmt.Errorf("core: %s: P%d of %d halts immediately; protocol not defined at this size",
					proto.Name(), pid, n)
			}
		}
		if _, _, ok := sim.SoloTerminate(c, 0, maxSolo); !ok {
			return fmt.Errorf("core: %s: no deciding solo execution within %d steps from the all-%d configuration",
				proto.Name(), maxSolo, input)
		}
	}
	return nil
}
