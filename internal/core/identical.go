package core

import (
	"fmt"
	"sort"

	"randsync/internal/object"
	"randsync/internal/sim"
)

// IdenticalOptions configure FindIdentical.
type IdenticalOptions struct {
	// MaxSolo bounds the length of solo terminating executions searched
	// for; 0 means an automatic bound derived from the object count.
	MaxSolo int
	// PoolPerInput is the number of processes allocated per input value;
	// 0 means an automatic bound (2r²+2r+4) comfortably above the
	// r²−r+2 processes Lemma 3.2 needs.
	PoolPerInput int
}

func (o IdenticalOptions) maxSolo(r int) int {
	if o.MaxSolo > 0 {
		return o.MaxSolo
	}
	return 8*(r+2)*(r+2) + 64
}

func (o IdenticalOptions) poolPerInput(r int) int {
	if o.PoolPerInput > 0 {
		return o.PoolPerInput
	}
	return 2*r*r + 2*r + 4
}

// rwSide is one half of the Lemma 3.1 setup: a set V of registers, a
// disjoint set of processes poised at them (one writer per register), and a
// solo execution by one of those writers that, run immediately after the
// block write to V, decides value.
type rwSide struct {
	regs    regSet      // V
	writers map[int]int // register → pid poised to write it
	runner  int         // ∈ writers: performs suffix after the block write
	suffix  sim.Execution
	value   int64
}

// ref identifies one event in the constructed execution: the idx-th event
// performed by process pid.  Clone pedigrees are lists of refs.
type ref struct{ pid, idx int }

// identicalAdversary carries the state of one FindIdentical run.
//
// Cloning soundness: §3.1's clones are processes "given the same initial
// state as P and scheduled as a group" with P, re-performing each of P's
// steps immediately after P.  During construction we teleport clones into
// captured source states (so the builder can continue), while recording a
// pedigree — the list of source events the clone must re-perform.  At the
// end, materialize inserts those warm-up copies immediately after the
// corresponding source events, yielding a legal execution from the true
// initial configuration; the final replay verifies every response matches.
// Re-performing is sound precisely because the objects are read-write
// registers: a duplicated write re-installs the same value and a
// duplicated read sees the value its source just saw.
type identicalAdversary struct {
	proto   sim.Protocol
	types   []object.Type
	free    map[int64][]int // input value → unused process slots
	maxSolo int

	histCount map[int]int   // events performed per pid in the constructed execution
	pedigree  map[int][]ref // clone pid → source events to re-perform
}

// alloc pops an unused process slot with the given input.
func (ad *identicalAdversary) alloc(input int64) (int, error) {
	pool := ad.free[input]
	if len(pool) == 0 {
		return 0, fmt.Errorf("core: process pool for input %d exhausted", input)
	}
	pid := pool[len(pool)-1]
	ad.free[input] = pool[:len(pool)-1]
	return pid, nil
}

// stepCounted performs pid's pending action on the construction
// configuration, recording it in the per-process event count.
func (ad *identicalAdversary) stepCounted(c *sim.Config, pid int, outcome int64) (sim.Event, error) {
	ev, err := c.Step(pid, outcome)
	if err != nil {
		return ev, err
	}
	ad.histCount[pid]++
	return ev, nil
}

// applyCounted replays recorded events on the construction configuration,
// verifying each and counting them.
func (ad *identicalAdversary) applyCounted(c *sim.Config, events sim.Execution) error {
	for _, ev := range events {
		if err := c.Apply(sim.Execution{ev}); err != nil {
			return err
		}
		ad.histCount[ev.Pid]++
	}
	return nil
}

// registerClone records that clone re-performs src's first upTo events
// (plus src's own inherited pedigree).
func (ad *identicalAdversary) registerClone(clone, src, upTo int) {
	refs := append([]ref(nil), ad.pedigree[src]...)
	for i := 0; i < upTo; i++ {
		refs = append(refs, ref{pid: src, idx: i})
	}
	ad.pedigree[clone] = refs
}

// materialize turns the constructed execution (which assumed teleported
// clones) into a legal execution from the initial configuration by
// inserting each clone's warm-up steps immediately after the corresponding
// source events.
func (ad *identicalAdversary) materialize(constructed sim.Execution) sim.Execution {
	followers := make(map[ref][]int)
	for clone, refs := range ad.pedigree {
		for _, r := range refs {
			followers[r] = append(followers[r], clone)
		}
	}
	for _, f := range followers {
		sort.Ints(f)
	}
	occ := make(map[int]int)
	out := make(sim.Execution, 0, len(constructed))
	for _, ev := range constructed {
		out = append(out, ev)
		r := ref{pid: ev.Pid, idx: occ[ev.Pid]}
		occ[ev.Pid]++
		for _, clone := range followers[r] {
			out = append(out, sim.Event{Pid: clone, Action: ev.Action, Result: ev.Result})
		}
	}
	return out
}

// FindIdentical mechanizes Lemma 3.2 / Theorem 3.3: given a protocol over
// read-write registers whose processes are identical and which satisfies
// nondeterministic solo termination, it constructs a verified execution
// deciding both 0 and 1.
//
// The construction follows the proof: take solo terminating executions of
// a 0-input process p and a 1-input process q, run both up to their first
// writes, and hand the resulting configuration to the Lemma 3.1 combiner,
// which splices the remainders together using clones.
func FindIdentical(proto sim.Protocol, opts IdenticalOptions) (*Witness, error) {
	if !proto.Identical() {
		return nil, fmt.Errorf("core: %s does not have identical processes; use FindGeneral", proto.Name())
	}
	types := proto.Objects()
	for i, t := range types {
		if _, isReg := t.(object.RegisterType); !isReg {
			return nil, fmt.Errorf("core: FindIdentical requires read-write registers; R%d is %s",
				i, t.Name())
		}
	}
	r := len(types)
	if r == 0 {
		return nil, fmt.Errorf("core: %s uses no objects", proto.Name())
	}

	perInput := opts.poolPerInput(r)
	inputs := make([]int64, 2*perInput)
	free := map[int64][]int{0: nil, 1: nil}
	for i := perInput; i < 2*perInput; i++ {
		inputs[i] = 1
	}
	p, q := 0, perInput
	// Reserve p and q; remaining slots form the clone pools (in reverse
	// order so low pids are used first, for readable traces).
	for i := 2*perInput - 1; i >= 0; i-- {
		if i == p || i == q {
			continue
		}
		free[inputs[i]] = append(free[inputs[i]], i)
	}

	ad := &identicalAdversary{
		proto:     proto,
		types:     types,
		free:      free,
		maxSolo:   opts.maxSolo(r),
		histCount: make(map[int]int),
		pedigree:  make(map[int][]ref),
	}

	initial := sim.NewConfig(proto, inputs)

	alpha, dec0, ok := sim.SoloTerminate(initial, p, ad.maxSolo)
	if !ok {
		return nil, fmt.Errorf("core: no solo terminating execution for P%d within %d steps; protocol may lack nondeterministic solo termination", p, ad.maxSolo)
	}
	if dec0 != 0 {
		return nil, fmt.Errorf("core: solo execution of 0-input process decides %d; protocol violates solo validity", dec0)
	}
	beta, dec1, ok := sim.SoloTerminate(initial, q, ad.maxSolo)
	if !ok {
		return nil, fmt.Errorf("core: no solo terminating execution for P%d within %d steps", q, ad.maxSolo)
	}
	if dec1 != 1 {
		return nil, fmt.Errorf("core: solo execution of 1-input process decides %d; protocol violates solo validity", dec1)
	}

	wa := firstWrite(types, alpha)
	wb := firstWrite(types, beta)

	// Lemma 3.2, easy cases: an execution with no writes is invisible, so
	// the two solo executions compose directly.
	var exec sim.Execution
	switch {
	case wa < 0:
		exec = append(append(sim.Execution{}, alpha...), beta...)
	case wb < 0:
		exec = append(append(sim.Execution{}, beta...), alpha...)
	default:
		// γ: both prefixes before the first writes (they contain no
		// writes, so they compose); C is the configuration after γ.
		gamma := append(append(sim.Execution{}, alpha[:wa]...), beta[:wb]...)
		work := initial.Clone()
		if err := ad.applyCounted(work, gamma); err != nil {
			return nil, fmt.Errorf("core: prefix composition failed: %w", err)
		}
		a := rwSide{
			regs:    newRegSet(alpha[wa].Action.Obj),
			writers: map[int]int{alpha[wa].Action.Obj: p},
			runner:  p,
			suffix:  alpha[wa+1:],
			value:   0,
		}
		b := rwSide{
			regs:    newRegSet(beta[wb].Action.Obj),
			writers: map[int]int{beta[wb].Action.Obj: q},
			runner:  q,
			suffix:  beta[wb+1:],
			value:   1,
		}
		rest, err := ad.combine(work, a, b)
		if err != nil {
			return nil, err
		}
		exec = ad.materialize(append(gamma, rest...))
	}

	w := &Witness{Proto: proto, Inputs: inputs, Exec: exec}
	if err := w.Verify(); err != nil {
		return nil, err
	}
	return w, nil
}

// firstWrite returns the index of the first nontrivial operation in exec,
// or -1 if there is none.
func firstWrite(types []object.Type, exec sim.Execution) int {
	for i, ev := range exec {
		if _, ok := nontrivialTarget(types, ev); ok {
			return i
		}
	}
	return -1
}

// verifyPoised checks that pid's pending action is a nontrivial operation
// on reg.
func (ad *identicalAdversary) verifyPoised(c *sim.Config, pid, reg int) error {
	a := c.Pending(pid)
	if obj, ok := nontrivialTarget(ad.types, sim.Event{Action: a}); !ok || obj != reg {
		return fmt.Errorf("core: P%d should be poised at R%d but is at %v", pid, reg, a)
	}
	return nil
}

// blockWrite performs the block write to s.regs by s.writers on c.  When
// counted is true the steps become part of the constructed execution.
func (ad *identicalAdversary) blockWrite(c *sim.Config, s rwSide, counted bool) (sim.Execution, error) {
	var out sim.Execution
	for _, reg := range s.regs.sorted() {
		pid := s.writers[reg]
		if err := ad.verifyPoised(c, pid, reg); err != nil {
			return nil, err
		}
		var ev sim.Event
		var err error
		if counted {
			ev, err = ad.stepCounted(c, pid, 0)
		} else {
			ev, err = c.Step(pid, 0)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// combine implements the induction of Lemma 3.1: from configuration c, the
// side a decides a.value after a block write to a.regs and a solo run by
// a.runner; b symmetrically; their process sets are disjoint; the result is
// an execution from c deciding both values.  combine owns (and mutates) c.
func (ad *identicalAdversary) combine(c *sim.Config, a, b rwSide) (sim.Execution, error) {
	if a.value == b.value {
		return nil, fmt.Errorf("core: combine with equal decision values %d", a.value)
	}
	if a.regs.subsetOf(b.regs) {
		return ad.caseSubset(c, a, b)
	}
	if b.regs.subsetOf(a.regs) {
		return ad.caseSubset(c, b, a)
	}
	return ad.caseIncomparable(c, a, b)
}

// caseSubset handles x.regs ⊆ y.regs (the first case of Lemma 3.1; x plays
// the role of (V, P, α) and y of (W, Q, β); x and y may decide either
// value as long as they differ).
func (ad *identicalAdversary) caseSubset(c *sim.Config, x, y rwSide) (sim.Execution, error) {
	// Find the first write in x's solo execution to a register outside
	// y.regs.
	idx := -1
	for i, ev := range x.suffix {
		if obj, ok := nontrivialTarget(ad.types, ev); ok && !y.regs[obj] {
			idx = i
			break
		}
	}

	if idx < 0 {
		// All of x's writes land inside y.regs: perform x's block write
		// and solo execution, then y's block write obliterates every
		// trace of them, and y's solo execution decides the other value
		// (Figures 1 and 2).
		exec, err := ad.blockWrite(c, x, true)
		if err != nil {
			return nil, err
		}
		if err := ad.applyCounted(c, x.suffix); err != nil {
			return nil, fmt.Errorf("core: replaying α after block write: %w", err)
		}
		exec = append(exec, x.suffix...)
		bw, err := ad.blockWrite(c, y, true)
		if err != nil {
			return nil, err
		}
		exec = append(exec, bw...)
		if err := ad.applyCounted(c, y.suffix); err != nil {
			return nil, fmt.Errorf("core: replaying β after block write: %w", err)
		}
		return append(exec, y.suffix...), nil
	}

	// Otherwise (Figure 3): execute x's block write and solo prefix up to
	// (but excluding) the write to R ∉ y.regs, capturing for each register
	// in x.regs the state of its last writer immediately before that
	// write.  Clones parked in those states re-perform the writes later,
	// so x's side can re-fix the registers of V; recurse with V' = V∪{R}.
	type capture struct {
		state sim.State
		src   int
		upTo  int // events src had performed before the captured write
	}
	last := make(map[int]capture)

	var delta sim.Execution
	for _, reg := range x.regs.sorted() {
		pid := x.writers[reg]
		if err := ad.verifyPoised(c, pid, reg); err != nil {
			return nil, err
		}
		pre := c.States[pid]
		upTo := ad.histCount[pid]
		ev, err := ad.stepCounted(c, pid, 0)
		if err != nil {
			return nil, err
		}
		delta = append(delta, ev)
		last[reg] = capture{state: pre, src: pid, upTo: upTo}
	}
	for _, ev := range x.suffix[:idx] {
		pre := c.States[ev.Pid]
		upTo := ad.histCount[ev.Pid]
		if err := ad.applyCounted(c, sim.Execution{ev}); err != nil {
			return nil, fmt.Errorf("core: replaying α prefix: %w", err)
		}
		delta = append(delta, ev)
		if obj, ok := nontrivialTarget(ad.types, ev); ok && x.regs[obj] {
			last[obj] = capture{state: pre, src: ev.Pid, upTo: upTo}
		}
	}

	writers := make(map[int]int, len(x.regs)+1)
	for _, reg := range x.regs.sorted() {
		cap, ok := last[reg]
		if !ok {
			return nil, fmt.Errorf("core: no write to R%d captured in δ", reg)
		}
		clone, err := ad.alloc(c.Inputs[cap.src])
		if err != nil {
			return nil, err
		}
		c.SetState(clone, cap.state)
		ad.registerClone(clone, cap.src, cap.upTo)
		writers[reg] = clone
	}

	r := x.suffix[idx].Action.Obj
	writers[r] = x.runner
	xPrime := rwSide{
		regs:    x.regs.clone(),
		writers: writers,
		runner:  x.runner,
		suffix:  x.suffix[idx+1:],
		value:   x.value,
	}
	xPrime.regs[r] = true

	rest, err := ad.combine(c, xPrime, y)
	if err != nil {
		return nil, err
	}
	return append(delta, rest...), nil
}

// caseIncomparable handles the case where neither register set contains
// the other (Figure 4): extend both sides to U = V ∪ W using clones of the
// other side's poised writers, probe the decisions of solo executions
// following a block write to U, and recurse on a pair whose measure
// v̄ + w̄ has strictly decreased.
func (ad *identicalAdversary) caseIncomparable(c *sim.Config, a, b rwSide) (sim.Execution, error) {
	u := a.regs.union(b.regs)

	// α-side extension P' = P ∪ clones of b's writers poised at W − V.
	aExt, err := ad.extend(c, a, b, u)
	if err != nil {
		return nil, err
	}
	if aExt.value == a.value {
		return ad.combine(c, aExt, b)
	}
	// γ decided b.value; build the symmetric extension.
	bExt, err := ad.extend(c, b, a, u)
	if err != nil {
		return nil, err
	}
	if bExt.value == b.value {
		return ad.combine(c, a, bExt)
	}
	// aExt decides b.value and bExt decides a.value: both sides now have
	// initial register set U, so the subset case applies and terminates.
	return ad.combine(c, bExt, aExt)
}

// extend builds the side (U, x.writers ∪ clones of y's writers poised at
// U−x.regs) and finds the decision of a solo execution by x.runner after a
// block write to U.  Clones are installed in c (they take no steps until
// used); the probe runs on a scratch copy of c.
func (ad *identicalAdversary) extend(c *sim.Config, x, y rwSide, u regSet) (rwSide, error) {
	writers := make(map[int]int, len(u))
	for reg, pid := range x.writers {
		writers[reg] = pid
	}
	for _, reg := range u.minus(x.regs).sorted() {
		src, ok := y.writers[reg]
		if !ok {
			return rwSide{}, fmt.Errorf("core: no writer poised at R%d to clone", reg)
		}
		clone, err := ad.alloc(c.Inputs[src])
		if err != nil {
			return rwSide{}, err
		}
		if err := c.CloneProcess(src, clone); err != nil {
			return rwSide{}, err
		}
		ad.registerClone(clone, src, ad.histCount[src])
		writers[reg] = clone
	}
	ext := rwSide{regs: u.clone(), writers: writers, runner: x.runner}

	probe := c.Clone()
	if _, err := ad.blockWrite(probe, ext, false); err != nil {
		return rwSide{}, err
	}
	suffix, val, ok := sim.SoloTerminate(probe, ext.runner, ad.maxSolo)
	if !ok {
		return rwSide{}, fmt.Errorf("core: no solo terminating execution for P%d after block write to U", ext.runner)
	}
	ext.suffix = suffix
	ext.value = val
	return ext, nil
}
