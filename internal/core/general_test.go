package core

import (
	"math/rand/v2"
	"testing"

	"randsync/internal/object"
	"randsync/internal/protocol"
	"randsync/internal/sim"
)

// TestFindGeneralFloodFamilies runs the general (Lemmas 3.4–3.6) adversary
// against Flood over each historyless object family and checks the Lemma
// 3.6 accounting: the witness uses at most 3r²+r processes.
func TestFindGeneralFloodFamilies(t *testing.T) {
	cases := []struct {
		name  string
		build func(r int) protocol.Flood
	}{
		{"registers", protocol.NewRegisterFlood},
		{"swap", protocol.NewSwapFlood},
		{"mixed", protocol.NewMixedFlood},
	}
	for _, tc := range cases {
		for r := 1; r <= 4; r++ {
			p := tc.build(r)
			w, err := FindGeneral(p, GeneralOptions{})
			if err != nil {
				t.Fatalf("%s r=%d: %v", tc.name, r, err)
			}
			if w.Kind != Inconsistency {
				t.Fatalf("%s r=%d: witness kind %v, want inconsistency", tc.name, r, w.Kind)
			}
			used := w.ProcessesUsed()
			bound := 3*r*r + r + 2 // Lemma 3.6 plus the v̄=0 slack pair
			t.Logf("%s r=%d: witness of %d events using %d processes (bound %d)",
				tc.name, r, len(w.Exec), used, bound)
			if used > 2*bound {
				t.Errorf("%s r=%d: witness uses %d processes, above 2(3r²+r+2) = %d; O(r²) shape lost",
					tc.name, r, used, 2*bound)
			}
		}
	}
}

// TestFindGeneralOrderByPref drives the general adversary through the
// incomparable-sets branch of Lemma 3.5 (Figure 4).
func TestFindGeneralOrderByPref(t *testing.T) {
	for r := 2; r <= 4; r++ {
		p := protocol.NewSwapFlood(r)
		p.OrderByPref = true
		w, err := FindGeneral(p, GeneralOptions{})
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		t.Logf("r=%d (reversed swap): witness of %d events using %d processes",
			r, len(w.Exec), w.ProcessesUsed())
	}
}

// TestFindGeneralWitnessReplaysFromScratch re-verifies independently.
func TestFindGeneralWitnessReplaysFromScratch(t *testing.T) {
	w, err := FindGeneral(protocol.NewMixedFlood(3), GeneralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := sim.NewConfig(w.Proto, w.Inputs)
	if err := c.Apply(w.Exec); err != nil {
		t.Fatalf("independent replay failed: %v", err)
	}
	d := c.Decisions()
	if len(d[0]) == 0 || len(d[1]) == 0 {
		t.Fatalf("replayed decisions = %v, want both 0 and 1 decided", d)
	}
}

// TestFindGeneralRejectsNonHistoryless ensures the hypothesis of Theorem
// 3.7 is enforced: the construction must refuse protocols whose objects
// are not historyless (for which correct implementations exist!).
func TestFindGeneralRejectsNonHistoryless(t *testing.T) {
	for _, p := range []sim.Protocol{
		protocol.CASConsensus{},
		protocol.NewCounterWalk(4),
		protocol.NewPackedFetchAdd(4),
		protocol.NewFetchAdd2(),
	} {
		if _, err := FindGeneral(p, GeneralOptions{}); err == nil {
			t.Errorf("%s: expected rejection of non-historyless objects", p.Name())
		}
	}
}

// TestFindGeneralNonIdenticalTarget checks that the general construction,
// unlike §3.1, does not require identical processes.
func TestFindGeneralNonIdenticalTarget(t *testing.T) {
	// TAS2 uses three historyless objects (two registers, one test&set)
	// and is correct for two processes — but the general adversary runs it
	// with 3r²+r = 30 processes, where the extra processes halt without
	// deciding... which breaks solo termination for them.  Instead use
	// Flood variants; non-identicality is exercised by the swap/mixed
	// floods through the general path (FindGeneral never clones).
	p := protocol.NewMixedFlood(2)
	w, err := FindGeneral(p, GeneralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Decisions[0]) == 0 || len(w.Decisions[1]) == 0 {
		t.Fatalf("decisions = %v", w.Decisions)
	}
}

// TestFindGeneralCustomProcessCount exercises the Processes override.
func TestFindGeneralCustomProcessCount(t *testing.T) {
	p := protocol.NewRegisterFlood(2)
	w, err := FindGeneral(p, GeneralOptions{Processes: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Inputs) != 40 {
		t.Fatalf("inputs = %d, want 40", len(w.Inputs))
	}
}

// TestFindGeneralValidityWitness exercises the validity-witness path: an
// inverted flood's interruptible execution by all-0-input processes
// decides 1, which (replayed in the all-0 configuration) violates
// validity directly.
func TestFindGeneralValidityWitness(t *testing.T) {
	p := protocol.NewSwapFlood(2)
	p.Inverted = true
	w, err := FindGeneral(p, GeneralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != ValidityViolation {
		t.Fatalf("witness kind = %v, want validity violation", w.Kind)
	}
	// All inputs in the witness configuration are 0, and some process
	// decided 1.
	for _, in := range w.Inputs {
		if in != 0 {
			t.Fatalf("validity witness inputs should be all 0, got %v", w.Inputs)
		}
	}
	if len(w.Decisions[1]) == 0 {
		t.Fatalf("decisions = %v, want value 1 decided", w.Decisions)
	}
}

// TestFindIdenticalSoloValidityRejected: the §3.1 construction reports
// inverted solo decisions as a solo-validity defect rather than building
// on them.
func TestFindIdenticalSoloValidityRejected(t *testing.T) {
	p := protocol.NewRegisterFlood(2)
	p.Inverted = true
	if _, err := FindIdentical(p, IdenticalOptions{}); err == nil {
		t.Fatal("expected solo-validity error for inverted flood")
	}
}

// TestFindGeneralRandomOrders sweeps the adversary over random flood
// geometries: random per-preference flood orders change which object sets
// the interruptible executions grow through, exercising the subset and
// incomparable branches of Lemma 3.5 in many combinations.  Every witness
// must verify by replay.
func TestFindGeneralRandomOrders(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 7))
	for trial := 0; trial < 12; trial++ {
		r := 2 + trial%3 // r in {2,3,4}
		p := protocol.NewMixedFlood(r)
		p.Orders[0] = rng.Perm(r)
		p.Orders[1] = rng.Perm(r)
		w, err := FindGeneral(p, GeneralOptions{})
		if err != nil {
			t.Fatalf("trial %d (r=%d, orders %v/%v): %v",
				trial, r, p.Orders[0], p.Orders[1], err)
		}
		if len(w.Decisions[0]) == 0 || len(w.Decisions[1]) == 0 {
			t.Fatalf("trial %d: decisions = %v", trial, w.Decisions)
		}
	}
}

// TestFindIdenticalRandomOrders does the same for the §3.1 construction
// over register floods.
func TestFindIdenticalRandomOrders(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 1))
	for trial := 0; trial < 12; trial++ {
		r := 2 + trial%4 // r in {2,3,4,5}
		p := protocol.NewRegisterFlood(r)
		p.Orders[0] = rng.Perm(r)
		p.Orders[1] = rng.Perm(r)
		w, err := FindIdentical(p, IdenticalOptions{})
		if err != nil {
			t.Fatalf("trial %d (r=%d, orders %v/%v): %v",
				trial, r, p.Orders[0], p.Orders[1], err)
		}
		if used, bound := w.ProcessesUsed(), 2*(r*r-r+2); used > bound {
			t.Errorf("trial %d: %d processes above relaxed bound %d", trial, used, bound)
		}
	}
}

// TestValidateTarget covers the adversary's precondition checks.
func TestValidateTarget(t *testing.T) {
	if err := ValidateTarget(protocol.NewMixedFlood(3), 10, 500); err != nil {
		t.Errorf("mixed flood should validate: %v", err)
	}
	if err := ValidateTarget(protocol.CASConsensus{}, 4, 100); err == nil {
		t.Error("CAS consensus is not historyless; must be rejected")
	}
	// TAS2 is historyless but only defined for 2 processes: at the
	// adversary's scale the extra processes halt immediately.
	if err := ValidateTarget(protocol.NewTAS2(), 30, 100); err == nil {
		t.Error("tas-2 at n=30 should fail validation")
	}
}

// TestFindGeneralCannotAttackCorrectProtocol documents why correct
// protocols escape the adversary: the register consensus protocol for n
// processes uses r = 2n+2 objects, and Lemma 3.6 needs ~3r² processes —
// but the protocol is only defined for n of them.  A correct protocol
// always keeps r large enough (r = Ω(√n)) that the adversary cannot be
// instantiated, which is precisely Theorem 3.7 read contrapositively.
func TestFindGeneralCannotAttackCorrectProtocol(t *testing.T) {
	p := protocol.NewRegisterConsensus(3, 4)
	// 2n+2 = 8 objects → the adversary wants 3·64+8+2 = 202 processes,
	// but the protocol's state machine indexes per-process registers only
	// for pids < n... which, at the adversary's pool size, produces
	// out-of-range operations that the simulator rejects.
	if _, err := FindGeneral(p, GeneralOptions{MaxSolo: 2000}); err == nil {
		t.Fatal("the adversary should fail to attack a correct protocol at its own scale")
	}
}

// TestFindGeneralScanMachines sweeps the general adversary over randomly
// generated solo-terminating protocols (the random-protocol-generation leg
// of the coverage argument): every sampled instance must yield a verified
// witness.
func TestFindGeneralScanMachines(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		r := 1 + int(seed)%4
		m := protocol.GenerateScanMachine(r, seed)
		if err := ValidateTarget(m, 6, 4000); err != nil {
			t.Fatalf("seed %d: generated machine invalid: %v", seed, err)
		}
		w, err := FindGeneral(m, GeneralOptions{MaxSolo: 4000})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, m.Name(), err)
		}
		if len(w.Decisions[0]) == 0 || len(w.Decisions[1]) == 0 {
			t.Fatalf("seed %d: decisions = %v", seed, w.Decisions)
		}
	}
}

// TestFindIdenticalScanMachines does the same for the §3.1 construction,
// restricting the generated machines to read-write registers.
func TestFindIdenticalScanMachines(t *testing.T) {
	for seed := uint64(100); seed <= 110; seed++ {
		r := 2 + int(seed)%3
		m := protocol.GenerateScanMachine(r, seed)
		for i := range m.Types {
			m.Types[i] = object.RegisterType{}
		}
		w, err := FindIdentical(m, IdenticalOptions{MaxSolo: 4000})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, m.Name(), err)
		}
		if len(w.Decisions) != 2 {
			t.Fatalf("seed %d: decisions = %v", seed, w.Decisions)
		}
	}
}
