package core

import (
	"testing"

	"randsync/internal/object"
	"randsync/internal/protocol"
	"randsync/internal/sim"
)

// TestFindIdenticalRegisterFlood runs the §3.1 adversary against the
// register Flood protocol for a range of register counts r and checks the
// Theorem 3.3 accounting: the witness uses at most r²−r+2 identical
// processes (the paper shows r²−r+2 suffice; Theorem 3.3 states at most
// r²−r+1 can solve consensus).
func TestFindIdenticalRegisterFlood(t *testing.T) {
	for r := 1; r <= 6; r++ {
		w, err := FindIdentical(protocol.NewRegisterFlood(r), IdenticalOptions{})
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		used := w.ProcessesUsed()
		bound := r*r - r + 2
		t.Logf("r=%d: witness of %d events using %d processes (Lemma 3.2 bound %d)",
			r, len(w.Exec), used, bound)
		if used > bound {
			t.Errorf("r=%d: witness uses %d processes, more than the r²−r+2 = %d of Lemma 3.2",
				r, used, bound)
		}
		if len(w.Decisions) != 2 {
			t.Errorf("r=%d: decisions = %v, want both values", r, w.Decisions)
		}
	}
}

// TestFindIdenticalOrderByPref drives the adversary through the
// incomparable-sets case (Figure 4): processes with preference 1 flood in
// reverse order, so the two solo executions first write different
// registers.
func TestFindIdenticalOrderByPref(t *testing.T) {
	for r := 2; r <= 6; r++ {
		p := protocol.NewRegisterFlood(r)
		p.OrderByPref = true
		w, err := FindIdentical(p, IdenticalOptions{})
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		used := w.ProcessesUsed()
		t.Logf("r=%d (reversed): witness of %d events using %d processes",
			r, len(w.Exec), used)
		// The incomparable case may clone both sides; allow the general
		// Lemma 3.1 process bound with v=w=1 plus the probe's extra side.
		bound := 2 * (r*r - r + 2)
		if used > bound {
			t.Errorf("r=%d: witness uses %d processes, above 2(r²−r+2) = %d", r, used, bound)
		}
	}
}

// TestWitnessIsReplayableFromScratch re-verifies the witness on a fresh
// configuration, independently of the adversary's bookkeeping.
func TestWitnessIsReplayableFromScratch(t *testing.T) {
	w, err := FindIdentical(protocol.NewRegisterFlood(3), IdenticalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := sim.NewConfig(w.Proto, w.Inputs)
	if err := c.Apply(w.Exec); err != nil {
		t.Fatalf("independent replay failed: %v", err)
	}
	d := c.Decisions()
	if len(d[0]) == 0 || len(d[1]) == 0 {
		t.Fatalf("replayed decisions = %v, want both 0 and 1 decided", d)
	}
}

// TestWitnessTamperDetected checks that Verify rejects corrupted witnesses.
func TestWitnessTamperDetected(t *testing.T) {
	w, err := FindIdentical(protocol.NewRegisterFlood(2), IdenticalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Exec) < 3 {
		t.Fatal("witness unexpectedly short")
	}
	w.Exec[1], w.Exec[2] = w.Exec[2], w.Exec[1]
	if err := w.Verify(); err == nil {
		// Swapping adjacent events of different processes can be legal;
		// corrupt a response instead.
		w.Exec[0].Result = 77
		if err := w.Verify(); err == nil {
			t.Fatal("Verify accepted a corrupted witness")
		}
	}
}

// TestFindIdenticalRejectsNonIdentical ensures the §3.1 construction is
// refused where cloning would be unsound.
func TestFindIdenticalRejectsNonIdentical(t *testing.T) {
	if _, err := FindIdentical(protocol.RegisterNaive2{}, IdenticalOptions{}); err == nil {
		t.Fatal("expected error for non-identical protocol")
	}
}

// TestFindIdenticalRejectsNonRegisters ensures the §3.1 construction is
// refused for objects where re-performing writes is unsound.
func TestFindIdenticalRejectsNonRegisters(t *testing.T) {
	if _, err := FindIdentical(protocol.NewSwapFlood(2), IdenticalOptions{}); err == nil {
		t.Fatal("expected error for swap objects in the identical-process case")
	}
	if _, err := FindIdentical(protocol.CASConsensus{}, IdenticalOptions{}); err == nil {
		t.Fatal("expected error for compare&swap objects")
	}
}

// TestRegSetOps covers the small set algebra used by the combiners.
func TestRegSetOps(t *testing.T) {
	a := newRegSet(1, 2)
	b := newRegSet(2, 3)
	if got := a.union(b).sorted(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("union = %v", got)
	}
	if got := a.minus(b).sorted(); len(got) != 1 || got[0] != 1 {
		t.Errorf("minus = %v", got)
	}
	if got := a.intersect(b).sorted(); len(got) != 1 || got[0] != 2 {
		t.Errorf("intersect = %v", got)
	}
	if a.subsetOf(b) || !a.subsetOf(a.union(b)) {
		t.Error("subsetOf misbehaves")
	}
	if !a.clone().equal(a) || a.equal(b) {
		t.Error("clone/equal misbehaves")
	}
}

// TestNontrivialTarget pins down poise detection.
func TestNontrivialTarget(t *testing.T) {
	types := []object.Type{object.RegisterType{}}
	read := sim.Event{Action: sim.Action{Kind: sim.ActOperate, Obj: 0, Op: object.Op{Kind: object.Read}}}
	write := sim.Event{Action: sim.Action{Kind: sim.ActOperate, Obj: 0, Op: object.Op{Kind: object.Write, Arg: 1}}}
	flip := sim.Event{Action: sim.Action{Kind: sim.ActFlip, Sides: 2}}
	if _, ok := nontrivialTarget(types, read); ok {
		t.Error("read is trivial")
	}
	if obj, ok := nontrivialTarget(types, write); !ok || obj != 0 {
		t.Error("write should be nontrivial on R0")
	}
	if _, ok := nontrivialTarget(types, flip); ok {
		t.Error("flip is not an operation")
	}
}
