// Package universal implements Herlihy's universal construction: a
// wait-free linearizable shared object of any sequential type (package
// object) for n processes, built from consensus.
//
// This realizes the application §1 of the paper motivates — "the software
// implementation of one synchronization object from another", which "allows
// easy porting of concurrent algorithms among machines with different
// hardware synchronization support".  The construction is parameterized by
// a factory of *binary* consensus instances (the primitive whose space
// complexity the paper studies): multi-valued agreement is built from
// binary agreement bit by bit, and the object itself from a log of agreed
// operations.
//
//   - With the CAS-backed factory, the object costs one compare&swap
//     register per decided bit.
//   - With the register-backed factory (consensus.NewRegisters), the
//     result is an arbitrary wait-free linearizable object from read-write
//     registers and randomization alone — impossible deterministically.
//
// The construction is wait-free by helping: at log slot k, every process
// proposes the oldest unfulfilled announcement of process k mod n if there
// is one, so every announced operation is decided within n slots.
package universal

import (
	"fmt"
	"sync/atomic"

	"randsync/internal/object"
)

// BinaryConsensus is one single-shot binary agreement instance.
type BinaryConsensus interface {
	Decide(proc int, input int64) int64
}

// Factory creates fresh binary consensus instances for n processes.
type Factory func(n int, seed uint64) BinaryConsensus

// valueBits is the width of multi-valued agreement: values are
// (proc << seqBits) | seq.
const (
	seqBits   = 24
	procBits  = 16
	valueBits = seqBits + procBits
)

// Multi agrees on one of the values proposed by the participating
// processes, using valueBits binary consensus instances plus n proposal
// registers (the classical bit-by-bit reduction).
//
// Correctness invariant: after each decided bit, at least one published
// proposal is consistent with the decided prefix — every process proposes
// the next bit of some consistent published value (its own if still
// consistent), and the decided bit is one of those proposals, so the
// proposer's candidate stays consistent.  After all bits, the decided
// string equals a published value.
type Multi struct {
	n     int
	props []atomic.Int64 // published proposals; 0 = none, else value+1
	bits  []BinaryConsensus
}

// NewMulti returns a multi-valued consensus instance for n processes.
func NewMulti(n int, factory Factory, seed uint64) *Multi {
	m := &Multi{
		n:     n,
		props: make([]atomic.Int64, n),
		bits:  make([]BinaryConsensus, valueBits),
	}
	for b := range m.bits {
		m.bits[b] = factory(n, seed+uint64(b))
	}
	return m
}

// Propose agrees on one of the proposed values.  value must be in
// [0, 2^valueBits).
//
// A process may call Propose more than once on the same instance (the
// universal object's Read and Apply both drive log slots); publications
// are write-once per process so that the value carrying the consistency
// invariant is never erased, and every bit proposed is the bit of some
// *published* value, keeping decided prefixes anchored to publications.
func (m *Multi) Propose(proc int, value int64) (int64, error) {
	if value < 0 || value >= 1<<valueBits {
		return 0, fmt.Errorf("universal: proposal %d out of range [0, 2^%d)", value, valueBits)
	}
	m.props[proc].CompareAndSwap(0, value+1)
	mine := m.props[proc].Load() - 1

	var prefix int64
	for b := valueBits - 1; b >= 0; b-- {
		// Find a published value consistent with the decided prefix,
		// preferring our own publication.
		shift := uint(b + 1)
		candidate := mine
		if candidate>>shift != prefix>>shift {
			candidate = -1
			for j := 0; j < m.n && candidate < 0; j++ {
				if p := m.props[j].Load(); p != 0 && (p-1)>>shift == prefix>>shift {
					candidate = p - 1
				}
			}
			if candidate < 0 {
				// Unreachable if the invariant holds: our own published
				// value was consistent initially and every decided bit
				// preserved some consistent publication.
				return 0, fmt.Errorf("universal: no published value consistent with prefix %b", prefix)
			}
		}
		myBit := (candidate >> uint(b)) & 1
		decided := m.bits[valueBits-1-b].Decide(proc, myBit)
		prefix |= decided << uint(b)
	}
	return prefix, nil
}

// announcement is one pending operation.
type announcement struct {
	op object.Op
}

// Universal is a wait-free linearizable shared object of sequential type
// typ for n processes.
type Universal struct {
	typ      object.Type
	n        int
	maxSlots int
	slots    []*Multi
	// announced[p] holds process p's operations; announcedLen[p] is the
	// published count (store-release after the slot is filled).
	announced    [][]atomic.Pointer[announcement]
	announcedLen []atomic.Int64
}

// Options configure New.
type Options struct {
	// MaxOps bounds the total operations the object can serve (the log
	// and per-process announcement arrays are preallocated for
	// wait-freedom).  0 means 4096.
	MaxOps int
	// Seed seeds the consensus factory.
	Seed uint64
}

func (o Options) maxOps() int {
	if o.MaxOps <= 0 {
		return 4096
	}
	return o.MaxOps
}

// New returns a universal wait-free implementation of typ for n processes
// using binary consensus instances from factory.
func New(typ object.Type, n int, factory Factory, opts Options) (*Universal, error) {
	if n > 1<<procBits {
		return nil, fmt.Errorf("universal: n=%d exceeds %d processes", n, 1<<procBits)
	}
	max := opts.maxOps()
	if max > 1<<seqBits {
		return nil, fmt.Errorf("universal: MaxOps=%d exceeds %d", max, 1<<seqBits)
	}
	u := &Universal{
		typ:          typ,
		n:            n,
		maxSlots:     max,
		slots:        make([]*Multi, max),
		announced:    make([][]atomic.Pointer[announcement], n),
		announcedLen: make([]atomic.Int64, n),
	}
	for i := range u.slots {
		u.slots[i] = NewMulti(n, factory, opts.Seed+uint64(i)*uint64(valueBits))
	}
	for p := range u.announced {
		u.announced[p] = make([]atomic.Pointer[announcement], max)
	}
	return u, nil
}

// replay deterministically applies log winners; used by every process to
// compute responses locally.
type replay struct {
	value   int64
	applied []int64 // per-process count of applied announcements
}

// Apply performs op on the shared object on behalf of proc, returning the
// operation's response at its linearization point.
//
// Each process must call Apply sequentially (one operation at a time), as
// with any shared-object port: proc identifies the calling thread.
func (u *Universal) Apply(proc int, op object.Op) (int64, error) {
	if err := object.Validate(u.typ, op); err != nil {
		return 0, err
	}
	// Announce.
	seq := u.announcedLen[proc].Load()
	if int(seq) >= u.maxSlots {
		return 0, fmt.Errorf("universal: operation capacity %d exhausted", u.maxSlots)
	}
	u.announced[proc][seq].Store(&announcement{op: op})
	u.announcedLen[proc].Add(1)

	// Drive the log until our announcement is decided into some slot.
	state := replay{value: u.typ.Init(), applied: make([]int64, u.n)}
	for slot := 0; slot < u.maxSlots; slot++ {
		proposal := u.helpProposal(slot, state, proc, seq)
		decided, err := u.slots[slot].Propose(proc, proposal)
		if err != nil {
			return 0, err
		}
		winProc := int(decided >> seqBits)
		winSeq := decided & (1<<seqBits - 1)
		ann := u.announced[winProc][winSeq].Load()
		if ann == nil {
			return 0, fmt.Errorf("universal: slot %d decided unannounced op (P%d #%d)", slot, winProc, winSeq)
		}
		newValue, resp := u.typ.Apply(state.value, ann.op)
		state.value = newValue
		state.applied[winProc]++
		if winProc == proc && winSeq == seq {
			return resp, nil
		}
	}
	return 0, fmt.Errorf("universal: log capacity %d exhausted before operation decided", u.maxSlots)
}

// helpProposal picks the value to propose at slot: the oldest unfulfilled
// announcement of the helped process (slot mod n) if one is visible, and
// our own pending announcement otherwise.
func (u *Universal) helpProposal(slot int, state replay, proc int, seq int64) int64 {
	helped := slot % u.n
	if next := state.applied[helped]; next < u.announcedLen[helped].Load() {
		return int64(helped)<<seqBits | next
	}
	return int64(proc)<<seqBits | seq
}

// Read returns the object's current value by replaying the decided prefix
// of the log.  It is a convenience for tests and examples; concurrent
// Applies may extend the log immediately afterwards.
//
// Read participates in consensus (it must, to learn each slot's winner),
// proposing already-decided values only; it never inserts an operation.
func (u *Universal) Read(proc int) (int64, error) {
	state := replay{value: u.typ.Init(), applied: make([]int64, u.n)}
	for slot := 0; slot < u.maxSlots; slot++ {
		// Probe the slot without inserting: propose the oldest visible
		// announcement (any will do — if the slot is undecided and no
		// announcements are pending, the log ends here).
		proposal := int64(-1)
		for p := 0; p < u.n && proposal < 0; p++ {
			if next := state.applied[p]; next < u.announcedLen[p].Load() {
				proposal = int64(p)<<seqBits | next
			}
		}
		if proposal < 0 {
			return state.value, nil
		}
		decided, err := u.slots[slot].Propose(proc, proposal)
		if err != nil {
			return 0, err
		}
		winProc := int(decided >> seqBits)
		winSeq := decided & (1<<seqBits - 1)
		ann := u.announced[winProc][winSeq].Load()
		if ann == nil {
			return 0, fmt.Errorf("universal: slot %d decided unannounced op", slot)
		}
		newValue, _ := u.typ.Apply(state.value, ann.op)
		state.value = newValue
		state.applied[winProc]++
	}
	return state.value, nil
}
