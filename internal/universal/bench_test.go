package universal

import (
	"testing"

	"randsync/internal/object"
)

// BenchmarkUniversalApply measures one operation through the CAS-backed
// universal object (log consensus + replay), single process.
func BenchmarkUniversalApply(b *testing.B) {
	u, err := New(object.CounterType{}, 4, casFactory, Options{MaxOps: b.N + 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Apply(0, object.Op{Kind: object.Inc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreUniversalLog measures the universal construction's log
// workload end to end: four processes round-robin operations through the
// CAS-backed universal counter, each Apply running log consensus plus
// replay — the §5-style construction the exploration engines certify.
func BenchmarkExploreUniversalLog(b *testing.B) {
	const procs = 4
	u, err := New(object.CounterType{}, procs, casFactory, Options{MaxOps: b.N + procs + 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Apply(i%procs, object.Op{Kind: object.Inc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiPropose measures one bit-by-bit multi-valued agreement.
func BenchmarkMultiPropose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := NewMulti(4, casFactory, uint64(i))
		if _, err := m.Propose(0, 12345); err != nil {
			b.Fatal(err)
		}
	}
}
