package universal

import (
	"testing"

	"randsync/internal/object"
)

// BenchmarkUniversalApply measures one operation through the CAS-backed
// universal object (log consensus + replay), single process.
func BenchmarkUniversalApply(b *testing.B) {
	u, err := New(object.CounterType{}, 4, casFactory, Options{MaxOps: b.N + 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Apply(0, object.Op{Kind: object.Inc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiPropose measures one bit-by-bit multi-valued agreement.
func BenchmarkMultiPropose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := NewMulti(4, casFactory, uint64(i))
		if _, err := m.Propose(0, 12345); err != nil {
			b.Fatal(err)
		}
	}
}
