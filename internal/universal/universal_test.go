package universal

import (
	"fmt"
	"sync"
	"testing"

	"randsync/internal/consensus"
	"randsync/internal/linearizability"
	"randsync/internal/object"
	"randsync/internal/runtime"
)

// casFactory backs each bit agreement with one compare&swap register.
func casFactory(n int, seed uint64) BinaryConsensus {
	return consensus.NewCAS()
}

// registerFactory backs each bit agreement with the randomized
// register-only protocol: the resulting universal object uses read-write
// registers and randomization alone.
func registerFactory(n int, seed uint64) BinaryConsensus {
	return consensus.NewRegisters(n, seed)
}

func TestMultiAgreesOnProposal(t *testing.T) {
	const n = 6
	for trial := 0; trial < 10; trial++ {
		m := NewMulti(n, casFactory, uint64(trial))
		proposals := make([]int64, n)
		results := make([]int64, n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			proposals[p] = int64(p*1000 + trial)
		}
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				v, err := m.Propose(p, proposals[p])
				if err != nil {
					t.Error(err)
					return
				}
				results[p] = v
			}(p)
		}
		wg.Wait()
		valid := map[int64]bool{}
		for _, v := range proposals {
			valid[v] = true
		}
		for p := 1; p < n; p++ {
			if results[p] != results[0] {
				t.Fatalf("disagreement: %v", results)
			}
		}
		if !valid[results[0]] {
			t.Fatalf("decided %d not among proposals %v", results[0], proposals)
		}
	}
}

func TestMultiRejectsOutOfRange(t *testing.T) {
	m := NewMulti(2, casFactory, 1)
	if _, err := m.Propose(0, -1); err == nil {
		t.Fatal("negative proposal should be rejected")
	}
	if _, err := m.Propose(0, 1<<valueBits); err == nil {
		t.Fatal("oversized proposal should be rejected")
	}
}

func TestMultiRepeatedProposeSameProc(t *testing.T) {
	// A process proposing twice (with different values) must still see
	// the same decision, and the decision must remain anchored to a
	// publication.
	m := NewMulti(2, casFactory, 1)
	first, err := m.Propose(0, 111)
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Propose(0, 222)
	if err != nil {
		t.Fatal(err)
	}
	if first != second || first != 111 {
		t.Fatalf("got %d then %d, want 111 twice", first, second)
	}
	// Another process joins late with its own value and must adopt.
	third, err := m.Propose(1, 333)
	if err != nil {
		t.Fatal(err)
	}
	if third != 111 {
		t.Fatalf("late proposer got %d, want 111", third)
	}
}

func TestUniversalCounterSequential(t *testing.T) {
	u, err := New(object.CounterType{}, 2, casFactory, Options{MaxOps: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := u.Apply(0, object.Op{Kind: object.Inc}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := u.Apply(0, object.Op{Kind: object.Read})
	if err != nil {
		t.Fatal(err)
	}
	if resp != 5 {
		t.Fatalf("read = %d, want 5", resp)
	}
	if v, err := u.Read(1); err != nil || v != 5 {
		t.Fatalf("Read = %d, %v", v, err)
	}
}

func TestUniversalCounterConcurrent(t *testing.T) {
	const n, each = 4, 8
	u, err := New(object.CounterType{}, n, casFactory, Options{MaxOps: 256})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := u.Apply(p, object.Op{Kind: object.Inc}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	v, err := u.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != n*each {
		t.Fatalf("counter = %d, want %d", v, n*each)
	}
}

// TestUniversalLinearizable records a concurrent history against the
// universal fetch&add object and checks it with the Wing–Gold checker:
// the universal construction must be linearizable by construction.
func TestUniversalLinearizable(t *testing.T) {
	const n, each = 3, 3
	typ := object.FetchAddType{}
	u, err := New(typ, n, casFactory, Options{MaxOps: 128})
	if err != nil {
		t.Fatal(err)
	}
	rec := &runtime.Recorder{}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				op := object.Op{Kind: object.FetchAdd, Arg: int64(p + 1)}
				rec.Record(p, op, func() int64 {
					resp, err := u.Apply(p, op)
					if err != nil {
						t.Error(err)
					}
					return resp
				})
			}
		}(p)
	}
	wg.Wait()
	res, err := linearizability.Check(typ, rec.Ops())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("universal object history not linearizable")
	}
}

// TestUniversalFromRegistersOnly builds the headline demo: a wait-free
// linearizable counter from read-write registers and randomization alone.
func TestUniversalFromRegistersOnly(t *testing.T) {
	const n = 2
	u, err := New(object.CounterType{}, n, registerFactory, Options{MaxOps: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := u.Apply(p, object.Op{Kind: object.Inc}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	v, err := u.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Fatalf("counter = %d, want 6", v)
	}
}

func TestUniversalCapacity(t *testing.T) {
	u, err := New(object.CounterType{}, 1, casFactory, Options{MaxOps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := u.Apply(0, object.Op{Kind: object.Inc}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := u.Apply(0, object.Op{Kind: object.Inc}); err == nil {
		t.Fatal("expected capacity exhaustion")
	}
}

func TestUniversalRejectsUnsupportedOp(t *testing.T) {
	u, err := New(object.RegisterType{}, 2, casFactory, Options{MaxOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Apply(0, object.Op{Kind: object.Inc}); err == nil {
		t.Fatal("register does not support inc")
	}
}

func TestUniversalSwapSemantics(t *testing.T) {
	u, err := New(object.SwapRegisterType{Initial: 7}, 2, casFactory, Options{MaxOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := u.Apply(0, object.Op{Kind: object.Swap, Arg: 9})
	if err != nil {
		t.Fatal(err)
	}
	if resp != 7 {
		t.Fatalf("swap returned %d, want 7", resp)
	}
	resp, err = u.Apply(1, object.Op{Kind: object.Read})
	if err != nil {
		t.Fatal(err)
	}
	if resp != 9 {
		t.Fatalf("read = %d, want 9", resp)
	}
}

func ExampleUniversal() {
	u, _ := New(object.CounterType{}, 2, casFactory, Options{MaxOps: 8})
	u.Apply(0, object.Op{Kind: object.Inc})
	u.Apply(1, object.Op{Kind: object.Inc})
	v, _ := u.Apply(0, object.Op{Kind: object.Read})
	fmt.Println(v)
	// Output: 2
}

// TestCorollary41Accounting demonstrates Corollary 4.1's direction: any
// randomized implementation of compare&swap from historyless objects needs
// Ω(√n) of them.  Our best register-only route — the universal
// construction over register-based consensus — costs 3n+2 registers per
// bit-agreement, i.e. valueBits·(3n+2) registers per log slot: far above
// the Ω(√n) floor, as the corollary demands (no implementation may beat
// it; ours does not).
func TestCorollary41Accounting(t *testing.T) {
	const n = 8
	perConsensus := 3*n + 2
	perSlot := valueBits * perConsensus
	if perSlot <= 8 { // √n for the corollary's bound at n=64 is 8
		t.Fatalf("register cost per CAS slot %d implausibly below the lower bound", perSlot)
	}
	t.Logf("universal CAS from registers: %d registers per bit-agreement, %d per slot (Ω(√n) floor: %d at n=%d)",
		perConsensus, perSlot, 3, n)
}
